// Unit tests of core/runtime: cancellation hierarchy, deadlines,
// degradation policy, ambient propagation, retry classification and the
// DVCK checkpoint envelope. The chaos interrupt matrix lives in
// chaos_test.cpp; these are the building-block contracts it relies on.
#include "darkvec/core/runtime/runtime.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "darkvec/core/errors.hpp"
#include "darkvec/core/parallel.hpp"
#include "darkvec/core/runtime/checkpoint.hpp"
#include "darkvec/core/runtime/retry.hpp"
#include "fault_injection.hpp"

namespace darkvec {
namespace {

TEST(CancellationToken, FreshTokenIsNotCancelled) {
  runtime::CancellationToken token;
  EXPECT_FALSE(token.cancelled());
  token.cancel();
  EXPECT_TRUE(token.cancelled());
  token.cancel();  // idempotent
  EXPECT_TRUE(token.cancelled());
}

TEST(CancellationToken, CopiesShareState) {
  runtime::CancellationToken a;
  const runtime::CancellationToken b = a;  // NOLINT: copy is the point
  a.cancel();
  EXPECT_TRUE(b.cancelled());
}

TEST(CancellationToken, ChildObservesParentButNotViceVersa) {
  runtime::CancellationToken parent;
  const runtime::CancellationToken child = parent.child();
  const runtime::CancellationToken grandchild = child.child();

  EXPECT_FALSE(grandchild.cancelled());
  parent.cancel();
  EXPECT_TRUE(child.cancelled());
  EXPECT_TRUE(grandchild.cancelled());
}

TEST(CancellationToken, SiblingIsolation) {
  runtime::CancellationToken parent;
  const runtime::CancellationToken a = parent.child();
  const runtime::CancellationToken b = parent.child();
  a.cancel();
  EXPECT_TRUE(a.cancelled());
  EXPECT_FALSE(b.cancelled());
  EXPECT_FALSE(parent.cancelled());
}

TEST(CancellationToken, CancelFromAnotherThread) {
  runtime::CancellationToken token;
  std::thread t([&] { token.cancel(); });
  t.join();
  EXPECT_TRUE(token.cancelled());
}

TEST(Deadline, NeverIsFreeAndNeverExpires) {
  const runtime::Deadline d = runtime::Deadline::never();
  EXPECT_FALSE(d.finite());
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining_seconds(), 1e18);
}

TEST(Deadline, InThePastExpires) {
  const runtime::Deadline d = runtime::Deadline::in(-1.0);
  EXPECT_TRUE(d.finite());
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(d.remaining_seconds(), 0.0);
}

TEST(Deadline, SoonerPicksTheEarlier) {
  const runtime::Deadline a = runtime::Deadline::in(1000.0);
  const runtime::Deadline b = runtime::Deadline::never();
  EXPECT_EQ(runtime::Deadline::sooner(a, b).time_point(), a.time_point());
  EXPECT_EQ(runtime::Deadline::sooner(b, a).time_point(), a.time_point());
}

TEST(RunContext, CheckPassesWhenNothingTripped) {
  runtime::RunContext ctx;
  EXPECT_NO_THROW(ctx.check());
  EXPECT_FALSE(ctx.should_stop());
  EXPECT_EQ(ctx.stop_reason(), runtime::StopReason::kNone);
  EXPECT_EQ(ctx.checks_observed(), 1u);
}

TEST(RunContext, CancelledTokenThrowsTyped) {
  runtime::RunContext ctx;
  ctx.token.cancel();
  EXPECT_THROW(ctx.check(), runtime::Cancelled);
  EXPECT_EQ(ctx.stop_reason(), runtime::StopReason::kCancelled);
}

TEST(RunContext, StrictDeadlineThrows) {
  runtime::RunContext ctx;
  ctx.deadline = runtime::Deadline::in(-1.0);
  EXPECT_THROW(ctx.check(), runtime::DeadlineExceeded);
  EXPECT_EQ(ctx.stop_reason(), runtime::StopReason::kDeadline);
}

TEST(RunContext, PartialResultsPolicyKeepsCheckQuietOnDeadline) {
  runtime::RunContext ctx;
  ctx.deadline = runtime::Deadline::in(-1.0);
  ctx.degrade = runtime::DegradePolicy::kPartialResults;
  EXPECT_NO_THROW(ctx.check());
  // ...but the non-throwing probe still reports it, so bounded kernels
  // know to truncate.
  EXPECT_EQ(ctx.stop_reason(), runtime::StopReason::kDeadline);
}

TEST(RunContext, PartialResultsStillThrowsOnCancel) {
  runtime::RunContext ctx;
  ctx.degrade = runtime::DegradePolicy::kPartialResults;
  ctx.token.cancel();
  EXPECT_THROW(ctx.check(), runtime::Cancelled);
}

TEST(RunContext, WallBudgetFoldsIntoDeadline) {
  runtime::RunContext ctx;
  ctx.budget.max_wall_seconds = 1e-9;  // expires immediately after arm()
  ctx.arm();
  EXPECT_TRUE(ctx.deadline.finite());
  runtime::interruptible_sleep(0.002, nullptr);  // let the nanosecond pass
  EXPECT_THROW(ctx.check(), runtime::DeadlineExceeded);
}

TEST(RunContext, RssBudgetTripsAsBudgetExceeded) {
  runtime::RunContext ctx;
  ctx.budget.max_rss_bytes = 1;  // any live process exceeds one byte
  // RSS is sampled every 64th check; the first check samples (count 0).
  EXPECT_THROW(
      {
        for (int i = 0; i < 65; ++i) ctx.check();
      },
      runtime::BudgetExceeded);
  EXPECT_EQ(ctx.stop_reason(), runtime::StopReason::kBudget);
}

TEST(RunContext, TripAfterChecksIsDeterministic) {
  for (const std::uint64_t trip : {1u, 3u, 10u}) {
    runtime::RunContext ctx;
    ctx.trip_after_checks = trip;
    std::uint64_t survived = 0;
    try {
      for (int i = 0; i < 100; ++i) {
        ctx.check();
        ++survived;
      }
      FAIL() << "check never tripped";
    } catch (const runtime::Cancelled&) {
      EXPECT_EQ(survived, trip - 1);
    }
  }
}

TEST(ContextScope, InstallsAndRestoresAmbient) {
  EXPECT_EQ(runtime::current(), nullptr);
  runtime::RunContext outer;
  {
    runtime::ContextScope a(&outer);
    EXPECT_EQ(runtime::current(), &outer);
    runtime::RunContext inner;
    {
      runtime::ContextScope b(&inner);
      EXPECT_EQ(runtime::current(), &inner);
    }
    EXPECT_EQ(runtime::current(), &outer);
  }
  EXPECT_EQ(runtime::current(), nullptr);
}

TEST(ContextScope, CheckpointIsNoOpWithoutContext) {
  EXPECT_EQ(runtime::current(), nullptr);
  EXPECT_NO_THROW(DV_CHECKPOINT());
}

TEST(ContextScope, AmbientContextReachesPoolWorkers) {
  runtime::RunContext ctx;
  runtime::ContextScope scope(&ctx);
  std::atomic<int> with_ctx{0};
  core::parallel_for(64, 1, [&](std::size_t, std::size_t) {
    if (runtime::current() == &ctx) with_ctx.fetch_add(1);
  });
  EXPECT_EQ(with_ctx.load(), 64);
}

TEST(ContextScope, CancelDuringParallelForThrowsOnSubmitter) {
  {
    runtime::RunContext ctx;
    ctx.trip_after_checks = 5;
    runtime::ContextScope scope(&ctx);
    EXPECT_THROW(core::parallel_for(256, 1,
                                    [&](std::size_t, std::size_t) {
                                      // pool checks the context per chunk
                                    }),
                 runtime::Cancelled);
  }
  // The pool survives a cancelled job: with the tripped context gone,
  // the next job runs normally on the same workers.
  std::atomic<int> ran{0};
  core::parallel_for(16, 1,
                     [&](std::size_t, std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 16);
}

TEST(InterruptibleSleep, CompletesWhenNotCancelled) {
  runtime::RunContext ctx;
  EXPECT_TRUE(runtime::interruptible_sleep(0.001, &ctx));
}

TEST(InterruptibleSleep, WakesEarlyWhenCancelled) {
  runtime::RunContext ctx;
  ctx.token.cancel();
  EXPECT_FALSE(runtime::interruptible_sleep(30.0, &ctx));
}

// ---------------------------------------------------------------------
// Retry classification and with_retry.

TEST(Retry, ClassificationSplitsTransientFromPermanent) {
  EXPECT_TRUE(io::is_transient(io::IoError("open failed")));
  EXPECT_TRUE(io::is_transient(io::TruncatedInput("short file")));
  EXPECT_FALSE(io::is_transient(io::ParseError("bad field")));
  EXPECT_FALSE(io::is_transient(io::FormatError("bad magic")));
  EXPECT_FALSE(io::is_transient(io::ResourceLimit("too big")));
}

TEST(Retry, SucceedsFirstTryWithoutRetrying) {
  int calls = 0;
  const int v = io::with_retry(io::RetryPolicy::immediate(4), [&] {
    ++calls;
    return 42;
  });
  EXPECT_EQ(v, 42);
  EXPECT_EQ(calls, 1);
}

TEST(Retry, TransientFailuresAreRetriedThenSucceed) {
  test::FlakyReads flaky(2);
  const int v = io::with_retry(io::RetryPolicy::immediate(4), [&] {
    flaky.step();
    return 7;
  });
  EXPECT_EQ(v, 7);
  EXPECT_EQ(flaky.calls(), 3);
}

TEST(Retry, TruncatedInputCountsAsTransient) {
  test::FlakyReads flaky(1, /*truncated=*/true);
  EXPECT_NO_THROW(io::with_retry(io::RetryPolicy::immediate(2),
                                 [&] { flaky.step(); }));
  EXPECT_EQ(flaky.calls(), 2);
}

TEST(Retry, PermanentErrorPropagatesImmediately) {
  int calls = 0;
  EXPECT_THROW(io::with_retry(io::RetryPolicy::immediate(4),
                              [&]() -> int {
                                ++calls;
                                throw io::FormatError("poison");
                              }),
               io::FormatError);
  EXPECT_EQ(calls, 1);
}

TEST(Retry, ExhaustedAttemptsRethrowTheLastTransient) {
  test::FlakyReads flaky(10);
  EXPECT_THROW(io::with_retry(io::RetryPolicy::immediate(3),
                              [&] { flaky.step(); }),
               io::IoError);
  EXPECT_EQ(flaky.calls(), 3);
}

TEST(Retry, InterruptedNeverRetries) {
  int calls = 0;
  EXPECT_THROW(io::with_retry(io::RetryPolicy::immediate(4),
                              [&]() -> int {
                                ++calls;
                                throw runtime::Cancelled("stop");
                              }),
               runtime::Cancelled);
  EXPECT_EQ(calls, 1);
}

TEST(Retry, CancelledContextAbortsBackoffSleep) {
  runtime::RunContext ctx;
  ctx.token.cancel();
  runtime::ContextScope scope(&ctx);
  io::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_s = 30.0;  // would hang if not interruptible
  test::FlakyReads flaky(5);
  EXPECT_THROW(io::with_retry(policy, [&] { flaky.step(); }),
               runtime::Cancelled);
  EXPECT_EQ(flaky.calls(), 1);
}

// ---------------------------------------------------------------------
// DVCK checkpoint envelope.

class CheckpointFile : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ =
      ::testing::TempDir() + "dvck_" +
      ::testing::UnitTest::GetInstance()->current_test_info()->name() +
      ".ckpt";
};

constexpr std::uint32_t kTestKind = runtime::fourcc("TEST");

TEST_F(CheckpointFile, RoundTripsPayload) {
  const std::vector<double> payload{1.5, -2.25, 3.125};
  runtime::save_checkpoint_file(path_, kTestKind, [&](std::ostream& out) {
    io::write_array(out, payload.data(), payload.size());
  });

  std::vector<double> loaded(payload.size());
  ASSERT_TRUE(runtime::load_checkpoint_file(
      path_, kTestKind, [&](std::istream& in) {
        ASSERT_EQ(io::read_array_bytes(in, loaded.data(), loaded.size()),
                  loaded.size() * sizeof(double));
      }));
  EXPECT_EQ(loaded, payload);
}

TEST_F(CheckpointFile, MissingFileReturnsFalse) {
  EXPECT_FALSE(runtime::load_checkpoint_file(path_ + ".absent", kTestKind,
                                             [](std::istream&) {}));
}

TEST_F(CheckpointFile, WrongKindIsFormatError) {
  runtime::save_checkpoint_file(path_, kTestKind, [](std::ostream& out) {
    io::write_pod(out, std::uint32_t{1});
  });
  EXPECT_THROW(runtime::load_checkpoint_file(path_, runtime::fourcc("OTHR"),
                                             [](std::istream&) {}),
               io::FormatError);
}

TEST_F(CheckpointFile, BitFlipFailsTheCrc) {
  runtime::save_checkpoint_file(path_, kTestKind, [](std::ostream& out) {
    for (std::uint32_t i = 0; i < 64; ++i) io::write_pod(out, i);
  });
  std::string bytes;
  {
    std::ifstream in(path_, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    bytes = buf.str();
  }
  // Flip one payload bit past the header; the CRC must catch it.
  bytes[32] = static_cast<char>(bytes[32] ^ 0x10);
  {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_THROW(runtime::load_checkpoint_file(path_, kTestKind,
                                             [](std::istream&) {}),
               io::FormatError);
}

TEST_F(CheckpointFile, TruncationIsTruncatedInput) {
  runtime::save_checkpoint_file(path_, kTestKind, [](std::ostream& out) {
    for (std::uint32_t i = 0; i < 64; ++i) io::write_pod(out, i);
  });
  std::string bytes;
  {
    std::ifstream in(path_, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    bytes = buf.str();
  }
  {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  EXPECT_THROW(runtime::load_checkpoint_file(path_, kTestKind,
                                             [](std::istream&) {}),
               io::TruncatedInput);
}

TEST_F(CheckpointFile, LenientPolicyTreatsDamageAsColdStart) {
  runtime::save_checkpoint_file(path_, kTestKind, [](std::ostream& out) {
    for (std::uint32_t i = 0; i < 64; ++i) io::write_pod(out, i);
  });
  std::string bytes;
  {
    std::ifstream in(path_, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    bytes = buf.str();
  }
  bytes[32] = static_cast<char>(bytes[32] ^ 0x10);
  {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  // Same damaged file: strict throws (above), lenient reads as "no
  // checkpoint" so callers can fall back to a cold start.
  bool saw_payload = false;
  EXPECT_FALSE(runtime::load_checkpoint_file(
      path_, kTestKind, [&](std::istream&) { saw_payload = true; },
      io::IoPolicy::lenient_with(1)));
  EXPECT_FALSE(saw_payload);
}

TEST_F(CheckpointFile, SaveReplacesAtomically) {
  runtime::save_checkpoint_file(path_, kTestKind, [](std::ostream& out) {
    io::write_pod(out, std::uint32_t{1});
  });
  runtime::save_checkpoint_file(path_, kTestKind, [](std::ostream& out) {
    io::write_pod(out, std::uint32_t{2});
  });
  std::uint32_t value = 0;
  ASSERT_TRUE(runtime::load_checkpoint_file(
      path_, kTestKind,
      [&](std::istream& in) { ASSERT_TRUE(io::read_pod(in, value)); }));
  EXPECT_EQ(value, 2u);
}

}  // namespace
}  // namespace darkvec
