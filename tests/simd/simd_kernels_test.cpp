// Parity suite for the runtime-dispatched SIMD kernels (`ctest -L simd`).
//
// Every vector variant the running CPU supports is checked against the
// scalar reference on randomized fixed-seed vectors: reductions under
// the documented ULP-style bound, element-wise kernels for exact bit
// equality. The quantization round-trip bound and the DVQ8 save/load
// path are covered here too (the corruption matrix lives in
// tests/io/fault_injection_test.cpp).
#include <cmath>
#include <cstring>
#include <limits>
#include <numeric>
#include <random>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "darkvec/core/contracts.hpp"
#include "darkvec/core/simd/simd.hpp"
#include "darkvec/ml/batch_topk.hpp"
#include "darkvec/ml/knn.hpp"
#include "darkvec/w2v/embedding.hpp"
#include "darkvec/w2v/quantized.hpp"

namespace darkvec {
namespace {

// Deterministic test vectors; sizes cross every vector width and leave
// odd tails (1, lane-1, lane, lane+1, multi-register, large).
const std::vector<std::size_t> kSizes = {0,  1,  3,  7,  8,   15,  16, 17,
                                         31, 32, 33, 52, 200, 257, 1024};

std::vector<float> random_f32(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  std::vector<float> v(n);
  for (float& x : v) x = dist(rng);
  return v;
}

std::vector<double> random_f64(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<double> v(n);
  for (double& x : v) x = dist(rng);
  return v;
}

std::vector<std::int8_t> random_i8(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> dist(-127, 127);
  std::vector<std::int8_t> v(n);
  for (std::int8_t& x : v) x = static_cast<std::int8_t>(dist(rng));
  return v;
}

/// Bitwise float/double vector comparison (EXPECT_EQ would treat -0.0
/// and +0.0 as equal; the bit-identity contract is stricter).
template <typename T>
void expect_bits_equal(const std::vector<T>& a, const std::vector<T>& b,
                       const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(std::memcmp(&a[i], &b[i], sizeof(T)), 0)
        << what << ": element " << i << " differs (" << a[i] << " vs "
        << b[i] << ")";
  }
}

class SimdLevels : public ::testing::TestWithParam<simd::Level> {};

INSTANTIATE_TEST_SUITE_P(
    AllSupported, SimdLevels,
    ::testing::ValuesIn(simd::supported_levels()),
    [](const ::testing::TestParamInfo<simd::Level>& param_info) {
      return simd::level_name(param_info.param);
    });

TEST_P(SimdLevels, DotF32WithinUlpBound) {
  const simd::Kernels& kern = simd::kernels_for(GetParam());
  const simd::Kernels& ref = simd::kernels_for(simd::Level::kScalar);
  for (const std::size_t n : kSizes) {
    const auto a = random_f32(n, 11 + static_cast<unsigned>(n));
    const auto b = random_f32(n, 29 + static_cast<unsigned>(n));
    const double got = kern.dot_f32(a.data(), b.data(), n);
    const double want = ref.dot_f32(a.data(), b.data(), n);
    double mag = 0;
    for (std::size_t i = 0; i < n; ++i) {
      mag += std::abs(double{a[i]} * b[i]);
    }
    const double bound =
        64.0 * static_cast<double>(std::numeric_limits<float>::epsilon()) *
        mag;
    EXPECT_LE(std::abs(got - want), bound) << "n=" << n;
  }
}

TEST_P(SimdLevels, DotF64WithinUlpBound) {
  const simd::Kernels& kern = simd::kernels_for(GetParam());
  const simd::Kernels& ref = simd::kernels_for(simd::Level::kScalar);
  for (const std::size_t n : kSizes) {
    const auto a = random_f64(n, 37 + static_cast<unsigned>(n));
    const auto b = random_f64(n, 41 + static_cast<unsigned>(n));
    const double got = kern.dot_f64(a.data(), b.data(), n);
    const double want = ref.dot_f64(a.data(), b.data(), n);
    double mag = 0;
    for (std::size_t i = 0; i < n; ++i) mag += std::abs(a[i] * b[i]);
    const double bound =
        64.0 * std::numeric_limits<double>::epsilon() * mag;
    EXPECT_LE(std::abs(got - want), bound) << "n=" << n;
  }
}

TEST_P(SimdLevels, AxpyF32BitIdentical) {
  const simd::Kernels& kern = simd::kernels_for(GetParam());
  const simd::Kernels& ref = simd::kernels_for(simd::Level::kScalar);
  for (const std::size_t n : kSizes) {
    const auto x = random_f32(n, 43 + static_cast<unsigned>(n));
    auto y_got = random_f32(n, 47 + static_cast<unsigned>(n));
    auto y_want = y_got;
    for (const float a : {0.0f, 1.0f, -0.37f, 1e-4f}) {
      kern.axpy_f32(n, a, x.data(), y_got.data());
      ref.axpy_f32(n, a, x.data(), y_want.data());
      expect_bits_equal(y_got, y_want, "axpy_f32");
    }
  }
}

TEST_P(SimdLevels, ScaleAddF32BitIdentical) {
  const simd::Kernels& kern = simd::kernels_for(GetParam());
  const simd::Kernels& ref = simd::kernels_for(simd::Level::kScalar);
  for (const std::size_t n : kSizes) {
    const auto x = random_f32(n, 53 + static_cast<unsigned>(n));
    auto y_got = random_f32(n, 59 + static_cast<unsigned>(n));
    auto y_want = y_got;
    kern.scale_add_f32(n, 0.25f, x.data(), -1.5f, y_got.data());
    ref.scale_add_f32(n, 0.25f, x.data(), -1.5f, y_want.data());
    expect_bits_equal(y_got, y_want, "scale_add_f32");
  }
}

TEST_P(SimdLevels, DotStripF32BitIdentical) {
  const simd::Kernels& kern = simd::kernels_for(GetParam());
  const simd::Kernels& ref = simd::kernels_for(simd::Level::kScalar);
  // Widths cross the 8/16/32-column paths plus ragged tails.
  for (const std::size_t width : {1u, 7u, 8u, 15u, 16u, 31u, 33u, 64u, 100u}) {
    for (const std::size_t dim : {1u, 5u, 52u, 200u}) {
      const auto query = random_f32(dim, 61 + static_cast<unsigned>(dim));
      const auto tile =
          random_f32(width * dim,
                     67 + static_cast<unsigned>(width * 131 + dim));
      std::vector<float> got(width, -1.0f);
      std::vector<float> want(width, -2.0f);
      kern.dot_strip_f32(query.data(), tile.data(), width, dim, got.data());
      ref.dot_strip_f32(query.data(), tile.data(), width, dim, want.data());
      expect_bits_equal(got, want, "dot_strip_f32");
    }
  }
}

TEST_P(SimdLevels, DotI8Exact) {
  const simd::Kernels& kern = simd::kernels_for(GetParam());
  const simd::Kernels& ref = simd::kernels_for(simd::Level::kScalar);
  for (const std::size_t n : kSizes) {
    const auto a = random_i8(n, 71 + static_cast<unsigned>(n));
    const auto b = random_i8(n, 73 + static_cast<unsigned>(n));
    EXPECT_EQ(kern.dot_i8(a.data(), b.data(), n),
              ref.dot_i8(a.data(), b.data(), n))
        << "n=" << n;
  }
  // Saturation stress: the maddubs pair trick must survive extreme codes.
  const std::vector<std::int8_t> lo(256, -127);
  const std::vector<std::int8_t> hi(256, 127);
  EXPECT_EQ(kern.dot_i8(lo.data(), hi.data(), 256),
            ref.dot_i8(lo.data(), hi.data(), 256));
  EXPECT_EQ(kern.dot_i8(lo.data(), lo.data(), 256),
            ref.dot_i8(lo.data(), lo.data(), 256));
}

TEST_P(SimdLevels, AdagradPairF64BitIdentical) {
  const simd::Kernels& kern = simd::kernels_for(GetParam());
  const simd::Kernels& ref = simd::kernels_for(simd::Level::kScalar);
  for (const std::size_t n : kSizes) {
    auto wi_got = random_f64(n, 79 + static_cast<unsigned>(n));
    auto wj_got = random_f64(n, 83 + static_cast<unsigned>(n));
    auto wi_want = wi_got;
    auto wj_want = wj_got;
    // AdaGrad accumulators start at 1.0 in GloVe and only grow.
    std::vector<double> gi_got(n, 1.0), gj_got(n, 1.0);
    auto gi_want = gi_got;
    auto gj_want = gj_got;
    for (int step = 0; step < 3; ++step) {
      const double g = 0.8 - 0.3 * step;
      kern.adagrad_pair_f64(n, g, 0.05, wi_got.data(), wj_got.data(),
                            gi_got.data(), gj_got.data());
      ref.adagrad_pair_f64(n, g, 0.05, wi_want.data(), wj_want.data(),
                           gi_want.data(), gj_want.data());
    }
    expect_bits_equal(wi_got, wi_want, "adagrad wi");
    expect_bits_equal(wj_got, wj_want, "adagrad wj");
    expect_bits_equal(gi_got, gi_want, "adagrad gi");
    expect_bits_equal(gj_got, gj_want, "adagrad gj");
  }
}

TEST(SimdDispatch, ActiveLevelIsSupported) {
  EXPECT_TRUE(simd::level_supported(simd::active_level()));
  EXPECT_EQ(simd::kernels().level, simd::active_level());
  // Scalar is supported everywhere and is always the first level listed.
  const auto levels = simd::supported_levels();
  ASSERT_FALSE(levels.empty());
  EXPECT_EQ(levels.front(), simd::Level::kScalar);
}

TEST(SimdDispatch, ScopedLevelForcesAndRestores) {
  const simd::Level before = simd::active_level();
  {
    simd::ScopedLevel scoped(simd::Level::kScalar);
    EXPECT_EQ(simd::active_level(), simd::Level::kScalar);
    EXPECT_EQ(simd::kernels().level, simd::Level::kScalar);
  }
  EXPECT_EQ(simd::active_level(), before);
}

TEST(SimdDispatch, ParseLevelVocabulary) {
  simd::Level level = simd::Level::kAvx2;
  EXPECT_TRUE(simd::parse_level("off", &level));
  EXPECT_EQ(level, simd::Level::kScalar);
  EXPECT_TRUE(simd::parse_level("scalar", &level));
  EXPECT_EQ(level, simd::Level::kScalar);
  EXPECT_TRUE(simd::parse_level("avx2", &level));
  EXPECT_EQ(level, simd::Level::kAvx2);
  EXPECT_TRUE(simd::parse_level("avx512", &level));
  EXPECT_EQ(level, simd::Level::kAvx512);
  EXPECT_FALSE(simd::parse_level("sse9", &level));
  EXPECT_FALSE(simd::parse_level("", &level));
}

w2v::Embedding random_embedding(std::size_t n, int dim, unsigned seed) {
  w2v::Embedding e(n, dim);
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> dist(-2.0f, 2.0f);
  for (std::size_t i = 0; i < n; ++i) {
    for (float& v : e.vec(i)) v = dist(rng);
  }
  return e;
}

TEST(QuantizedEmbedding, RoundTripWithinHalfStep) {
  const auto e = random_embedding(40, 52, 97);
  const auto q = w2v::QuantizedEmbedding::quantize(e);
  ASSERT_EQ(q.size(), e.size());
  ASSERT_EQ(q.dim(), e.dim());
  EXPECT_EQ(q.stride() % 32, 0u);
  const auto back = q.dequantize();
  for (std::size_t i = 0; i < e.size(); ++i) {
    float amax = 0;
    for (const float v : e.vec(i)) amax = std::max(amax, std::abs(v));
    // Round-to-nearest: reconstruction is within half a quantization
    // step (amax / 254) of the source, plus float rounding slop.
    const float bound = amax / 254.0f + amax * 1e-5f;
    for (std::size_t d = 0; d < e.vec(i).size(); ++d) {
      EXPECT_NEAR(back.vec(i)[d], e.vec(i)[d], bound)
          << "row " << i << " dim " << d;
    }
  }
}

TEST(QuantizedEmbedding, ZeroRowsStayZero) {
  w2v::Embedding e(3, 16);
  e.vec(1)[4] = 1.0f;
  const auto q = w2v::QuantizedEmbedding::quantize(e);
  EXPECT_EQ(q.scale(0), 0.0f);
  EXPECT_GT(q.scale(1), 0.0f);
  for (const std::int8_t v : q.row(0)) EXPECT_EQ(v, 0);
  const auto back = q.dequantize();
  for (const float v : back.vec(0)) EXPECT_EQ(v, 0.0f);
}

TEST(QuantizedEmbedding, PaddingIsZero) {
  const auto q =
      w2v::QuantizedEmbedding::quantize(random_embedding(8, 52, 101));
  ASSERT_GT(q.stride(), static_cast<std::size_t>(q.dim()));
  for (std::size_t i = 0; i < q.size(); ++i) {
    const auto row = q.row(i);
    for (std::size_t d = static_cast<std::size_t>(q.dim());
         d < q.stride(); ++d) {
      EXPECT_EQ(row[d], 0) << "row " << i << " pad " << d;
    }
  }
}

TEST(QuantizedEmbedding, SaveLoadRoundTrip) {
  const auto q =
      w2v::QuantizedEmbedding::quantize(random_embedding(17, 52, 103));
  std::ostringstream out;
  q.save(out);
  std::istringstream in(out.str());
  io::IoReport report;
  const auto loaded =
      w2v::QuantizedEmbedding::load(in, io::IoPolicy::strict(), &report);
  EXPECT_TRUE(report.checksum_verified);
  ASSERT_EQ(loaded.size(), q.size());
  ASSERT_EQ(loaded.dim(), q.dim());
  for (std::size_t i = 0; i < q.size(); ++i) {
    EXPECT_EQ(loaded.scale(i), q.scale(i));
    const auto a = loaded.row(i);
    const auto b = q.row(i);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size()), 0) << "row " << i;
  }
}

TEST(QuantizedEmbedding, LenientLoadKeepsWholeRowsOnTruncation) {
  const auto q =
      w2v::QuantizedEmbedding::quantize(random_embedding(10, 16, 107));
  std::ostringstream out;
  q.save(out);
  const std::string bytes = out.str();
  // Cut mid-way through the int8 payload (keep header + scales + a few
  // rows); strict must throw, lenient must keep only complete rows.
  const std::size_t header = 4 + 4 + 8 + 4 + 10 * sizeof(float);
  const std::string cut = bytes.substr(0, header + 16 * 4 + 7);
  {
    std::istringstream in(cut);
    EXPECT_THROW(
        (void)w2v::QuantizedEmbedding::load(in, io::IoPolicy::strict()),
        io::TruncatedInput);
  }
  {
    std::istringstream in(cut);
    io::IoReport report;
    const auto loaded = w2v::QuantizedEmbedding::load(
        in, io::IoPolicy::lenient_with(1 << 20), &report);
    EXPECT_EQ(loaded.size(), 4u);
    EXPECT_EQ(report.records_read, 4u);
    for (std::size_t i = 0; i < loaded.size(); ++i) {
      EXPECT_EQ(std::memcmp(loaded.row(i).data(), q.row(i).data(),
                            loaded.row(i).size()),
                0);
    }
  }
}

TEST(QuantizedEmbedding, CorruptPayloadFailsChecksum) {
  const auto q =
      w2v::QuantizedEmbedding::quantize(random_embedding(6, 16, 109));
  std::ostringstream out;
  q.save(out);
  std::string bytes = out.str();
  bytes[bytes.size() - 10] = static_cast<char>(bytes[bytes.size() - 10] ^ 0x40);
  std::istringstream in(bytes);
  io::IoReport report;
  const auto loaded = w2v::QuantizedEmbedding::load(
      in, io::IoPolicy::lenient_with(1 << 20), &report);
  EXPECT_TRUE(report.checksum_failed);
  EXPECT_FALSE(report.checksum_verified);
}

TEST(QuantizedKnn, TopkMatchesFp32OnSeparatedClusters) {
  // Three well-separated directions plus small noise: quantization error
  // must not change any top-3 neighbourhood.
  const int dim = 52;
  const std::size_t per_cluster = 12;
  w2v::Embedding e(3 * per_cluster, dim);
  std::mt19937 rng(113);
  std::uniform_real_distribution<float> noise(-0.05f, 0.05f);
  for (std::size_t i = 0; i < e.size(); ++i) {
    auto row = e.vec(i);
    for (float& v : row) v = noise(rng);
    row[(i / per_cluster) * 3] += 1.0f;
  }
  ml::CosineKnn knn(e);
  const auto fp32 = knn.all_neighbors(3);
  const auto int8 = knn.all_neighbors_quantized(3);
  ASSERT_EQ(fp32.size(), int8.size());
  for (std::size_t i = 0; i < fp32.size(); ++i) {
    ASSERT_EQ(fp32[i].size(), int8[i].size()) << "query " << i;
    for (std::size_t r = 0; r < fp32[i].size(); ++r) {
      // Same cluster membership, near-identical similarity.
      EXPECT_EQ(fp32[i][r].index / per_cluster, int8[i][r].index / per_cluster)
          << "query " << i << " rank " << r;
      EXPECT_NEAR(fp32[i][r].similarity, int8[i][r].similarity, 0.05)
          << "query " << i << " rank " << r;
    }
  }
}

TEST(BatchTopk, AutoTileMatchesExplicitTile) {
  const auto normalized = random_embedding(60, 200, 127).normalized();
  std::vector<std::uint32_t> queries(normalized.size());
  std::iota(queries.begin(), queries.end(), 0u);
  const auto auto_tiled = ml::batch_topk(normalized, queries, 5, {});
  const auto explicit_tiled =
      ml::batch_topk(normalized, queries, 5, {.query_block = 8,
                                              .corpus_block = 24});
  ASSERT_EQ(auto_tiled.size(), explicit_tiled.size());
  for (std::size_t i = 0; i < auto_tiled.size(); ++i) {
    ASSERT_EQ(auto_tiled[i].size(), explicit_tiled[i].size());
    for (std::size_t r = 0; r < auto_tiled[i].size(); ++r) {
      EXPECT_EQ(auto_tiled[i][r].index, explicit_tiled[i][r].index);
      EXPECT_EQ(auto_tiled[i][r].similarity, explicit_tiled[i][r].similarity);
    }
  }
}

TEST(BatchTopk, OversizedExplicitTileViolatesContract) {
  const auto normalized = random_embedding(4, 256, 131).normalized();
  const std::vector<std::uint32_t> queries = {0, 1};
  EXPECT_THROW((void)ml::batch_topk(normalized, queries, 2,
                                    {.corpus_block = 1u << 14}),
               ContractViolation);
}

// Every level must agree with the serial scan through the full blocked
// path, not just at the kernel boundary — the end-to-end bit-identity
// claim of the batch_topk determinism contract.
TEST(BatchTopk, AllLevelsMatchSerialScan) {
  const auto e = random_embedding(48, 52, 137);
  ml::CosineKnn knn(e);
  std::vector<std::vector<ml::Neighbor>> serial(knn.size());
  for (std::size_t i = 0; i < knn.size(); ++i) serial[i] = knn.query(i, 4);
  for (const simd::Level level : simd::supported_levels()) {
    simd::ScopedLevel scoped(level);
    const auto batch = knn.all_neighbors(4);
    ASSERT_EQ(batch.size(), serial.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      ASSERT_EQ(batch[i].size(), serial[i].size())
          << simd::level_name(level) << " query " << i;
      for (std::size_t r = 0; r < batch[i].size(); ++r) {
        EXPECT_EQ(batch[i][r].index, serial[i][r].index)
            << simd::level_name(level) << " query " << i << " rank " << r;
        EXPECT_EQ(batch[i][r].similarity, serial[i][r].similarity)
            << simd::level_name(level) << " query " << i << " rank " << r;
      }
    }
  }
}

}  // namespace
}  // namespace darkvec
