#include "darkvec/corpus/service_map.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace darkvec::corpus {
namespace {

using net::PortKey;
using net::Protocol;

PortKey tcp(std::uint16_t p) { return PortKey{p, Protocol::kTcp}; }
PortKey udp(std::uint16_t p) { return PortKey{p, Protocol::kUdp}; }

TEST(SingleServiceMap, EverythingIsOneService) {
  SingleServiceMap map;
  EXPECT_EQ(map.num_services(), 1);
  EXPECT_EQ(map.service_of(tcp(23)), 0);
  EXPECT_EQ(map.service_of(udp(53)), 0);
  EXPECT_EQ(map.service_of(PortKey{0, Protocol::kIcmp}), 0);
  EXPECT_EQ(map.name(0), "all");
}

// ---- Domain-knowledge mapping: Table 7 spot checks ----------------------

struct DomainCase {
  PortKey key;
  const char* service;
};

class DomainMapping : public ::testing::TestWithParam<DomainCase> {};

TEST_P(DomainMapping, MapsPortToExpectedService) {
  const DomainServiceMap map;
  const auto& param = GetParam();
  EXPECT_EQ(map.name(map.service_of(param.key)), param.service)
      << param.key.to_string();
}

INSTANTIATE_TEST_SUITE_P(
    Table7, DomainMapping,
    ::testing::Values(
        DomainCase{tcp(23), "Telnet"}, DomainCase{tcp(992), "Telnet"},
        DomainCase{tcp(22), "SSH"}, DomainCase{tcp(88), "Kerberos"},
        DomainCase{udp(88), "Kerberos"}, DomainCase{tcp(464), "Kerberos"},
        DomainCase{tcp(80), "HTTP"}, DomainCase{tcp(443), "HTTP"},
        DomainCase{tcp(8080), "HTTP"}, DomainCase{tcp(1080), "Proxy"},
        DomainCase{tcp(57000), "Proxy"}, DomainCase{tcp(25), "Mail"},
        DomainCase{tcp(587), "Mail"}, DomainCase{tcp(993), "Mail"},
        DomainCase{tcp(5432), "Database"}, DomainCase{tcp(1433), "Database"},
        DomainCase{udp(1434), "Database"}, DomainCase{tcp(27017), "Database"},
        DomainCase{tcp(53), "DNS"}, DomainCase{udp(53), "DNS"},
        DomainCase{udp(5353), "DNS"}, DomainCase{tcp(853), "DNS"},
        DomainCase{udp(137), "Netbios"}, DomainCase{tcp(139), "Netbios"},
        DomainCase{tcp(445), "Netbios-SMB"}, DomainCase{tcp(4662), "P2P"},
        DomainCase{udp(6881), "P2P"}, DomainCase{tcp(6969), "P2P"},
        DomainCase{tcp(21), "FTP"}, DomainCase{udp(69), "FTP"},
        DomainCase{tcp(8021), "FTP"}));

struct RangeCase {
  PortKey key;
  const char* service;
};

class DomainRangeFallback : public ::testing::TestWithParam<RangeCase> {};

TEST_P(DomainRangeFallback, UnlistedPortsFallToRangeServices) {
  const DomainServiceMap map;
  EXPECT_EQ(map.name(map.service_of(GetParam().key)), GetParam().service);
}

INSTANTIATE_TEST_SUITE_P(
    Ranges, DomainRangeFallback,
    ::testing::Values(RangeCase{tcp(7), "Unknown System"},
                      RangeCase{tcp(1023), "Unknown System"},
                      RangeCase{tcp(1024), "Unknown User"},
                      RangeCase{tcp(5555), "Unknown User"},
                      RangeCase{tcp(49151), "Unknown User"},
                      RangeCase{tcp(49152), "Unknown Ephemeral"},
                      RangeCase{tcp(65535), "Unknown Ephemeral"},
                      RangeCase{udp(40000), "Unknown User"}));

TEST(DomainServiceMap, IcmpHasItsOwnService) {
  const DomainServiceMap map;
  EXPECT_EQ(map.name(map.service_of(PortKey{0, Protocol::kIcmp})), "ICMP");
  // Even with a nonsense port number attached.
  EXPECT_EQ(map.name(map.service_of(PortKey{99, Protocol::kIcmp})), "ICMP");
}

TEST(DomainServiceMap, ProtocolMatters) {
  const DomainServiceMap map;
  // 445/tcp is SMB but 445/udp is not listed -> range fallback.
  EXPECT_EQ(map.name(map.service_of(tcp(445))), "Netbios-SMB");
  EXPECT_EQ(map.name(map.service_of(udp(445))), "Unknown System");
  // 22 only as TCP.
  EXPECT_EQ(map.name(map.service_of(udp(22))), "Unknown System");
}

TEST(DomainServiceMap, ServiceIdsAreDense) {
  const DomainServiceMap map;
  EXPECT_EQ(map.num_services(), 16);  // 12 port-listed + ICMP + 3 ranges
  std::unordered_set<std::string> names;
  for (int s = 0; s < map.num_services(); ++s) {
    EXPECT_TRUE(names.insert(map.name(s)).second) << map.name(s);
  }
}

TEST(DomainServiceMap, IdOfNameLookup) {
  const DomainServiceMap map;
  EXPECT_EQ(map.name(map.id_of("Telnet")), "Telnet");
  EXPECT_EQ(map.name(map.id_of("DNS")), "DNS");
  EXPECT_EQ(map.id_of("NoSuchService"), -1);
}

TEST(DomainServiceMap, BadIdName) {
  const DomainServiceMap map;
  EXPECT_EQ(map.name(-1), "?");
  EXPECT_EQ(map.name(999), "?");
}

// ---- Auto-defined services ----------------------------------------------

net::Trace trace_with_port_counts() {
  // 23/tcp x5, 445/tcp x3, 53/udp x2, 80/tcp x1.
  net::Trace t;
  auto add = [&t](std::uint16_t port, Protocol proto, int count) {
    for (int i = 0; i < count; ++i) {
      net::Packet p;
      p.ts = static_cast<std::int64_t>(t.size());
      p.src = net::IPv4{1, 2, 3, 4};
      p.dst_port = port;
      p.proto = proto;
      t.push_back(p);
    }
  };
  add(23, Protocol::kTcp, 5);
  add(445, Protocol::kTcp, 3);
  add(53, Protocol::kUdp, 2);
  add(80, Protocol::kTcp, 1);
  t.sort();
  return t;
}

TEST(AutoServiceMap, TopNGetTheirOwnServices) {
  const AutoServiceMap map(trace_with_port_counts(), 2);
  EXPECT_EQ(map.num_services(), 3);  // top-2 + other
  EXPECT_EQ(map.service_of(tcp(23)), 0);
  EXPECT_EQ(map.service_of(tcp(445)), 1);
  EXPECT_EQ(map.service_of(udp(53)), 2);  // falls into "other"
  EXPECT_EQ(map.service_of(tcp(80)), 2);
  EXPECT_EQ(map.service_of(tcp(9999)), 2);
}

TEST(AutoServiceMap, NamesReflectPorts) {
  const AutoServiceMap map(trace_with_port_counts(), 2);
  EXPECT_EQ(map.name(0), "port 23/tcp");
  EXPECT_EQ(map.name(1), "port 445/tcp");
  EXPECT_EQ(map.name(2), "other");
}

TEST(AutoServiceMap, HandlesFewerPortsThanN) {
  const AutoServiceMap map(trace_with_port_counts(), 100);
  EXPECT_EQ(map.num_services(), 5);  // 4 ports + other
}

TEST(AutoServiceMap, EmptyTrace) {
  const AutoServiceMap map(net::Trace{}, 10);
  EXPECT_EQ(map.num_services(), 1);
  EXPECT_EQ(map.service_of(tcp(23)), 0);
}

TEST(MakeServiceMap, FactoryDispatch) {
  const net::Trace t = trace_with_port_counts();
  EXPECT_EQ(make_service_map(ServiceStrategy::kSingle, t)->num_services(), 1);
  EXPECT_EQ(make_service_map(ServiceStrategy::kAuto, t, 2)->num_services(), 3);
  EXPECT_EQ(make_service_map(ServiceStrategy::kDomain, t)->num_services(), 16);
}

TEST(ServiceStrategy, Names) {
  EXPECT_EQ(to_string(ServiceStrategy::kSingle), "single");
  EXPECT_EQ(to_string(ServiceStrategy::kAuto), "auto");
  EXPECT_EQ(to_string(ServiceStrategy::kDomain), "domain");
}

}  // namespace
}  // namespace darkvec::corpus
