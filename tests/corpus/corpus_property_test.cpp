// Property tests over random traces: invariants of corpus construction
// that must hold for any input.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "darkvec/corpus/corpus.hpp"
#include "darkvec/net/time.hpp"
#include "darkvec/sim/rng.hpp"

namespace darkvec::corpus {
namespace {

net::Trace random_trace(std::size_t packets, std::size_t senders,
                        std::size_t ports, std::uint64_t seed) {
  sim::Rng rng(seed);
  net::Trace t;
  for (std::size_t i = 0; i < packets; ++i) {
    net::Packet p;
    p.ts = net::kTraceEpoch +
           static_cast<std::int64_t>(rng.uniform_int(5 * 86400));
    p.src = net::IPv4{10, 0, static_cast<std::uint8_t>(rng.uniform_int(
                                  senders / 200 + 1)),
                      static_cast<std::uint8_t>(rng.uniform_int(200))};
    p.dst_port = static_cast<std::uint16_t>(rng.uniform_int(ports) + 1);
    p.proto = rng.uniform() < 0.8 ? net::Protocol::kTcp
                                  : net::Protocol::kUdp;
    t.push_back(p);
  }
  t.sort();
  return t;
}

class CorpusProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    trace_ = random_trace(3000, 400, 300, GetParam());
    options_.min_packets = 5;
    corpus_ = build_corpus(trace_, services_, options_);
  }

  net::Trace trace_;
  DomainServiceMap services_;
  CorpusOptions options_;
  Corpus corpus_;
};

TEST_P(CorpusProperty, EveryWordIsAnActiveSender) {
  const auto totals = trace_.packets_per_sender();
  for (const net::IPv4 ip : corpus_.words) {
    EXPECT_GE(totals.at(ip), options_.min_packets);
  }
}

TEST_P(CorpusProperty, EveryActiveSenderWithCompanyIsAWord) {
  // An active sender missing from the vocabulary can only happen if all
  // its packets landed in singleton sentences; verify token conservation
  // instead: tokens <= active packets, and the difference is exactly the
  // dropped singleton packets.
  std::size_t active_packets = 0;
  const auto totals = trace_.packets_per_sender();
  for (const auto& [ip, n] : totals) {
    if (n >= options_.min_packets) active_packets += n;
  }
  EXPECT_LE(corpus_.tokens(), active_packets);
}

TEST_P(CorpusProperty, SentencesRespectWindowAndService) {
  // Rebuild the (window, service) key of every token by replaying the
  // trace; each sentence must be a contiguous run of one key.
  const auto totals = trace_.packets_per_sender();
  std::vector<std::pair<std::int64_t, int>> token_keys;
  std::vector<net::IPv4> token_senders;
  const std::int64_t t0 = trace_[0].ts;
  for (const net::Packet& p : trace_) {
    if (totals.at(p.src) < options_.min_packets) continue;
    token_keys.emplace_back((p.ts - t0) / options_.delta_t,
                            services_.service_of(p.port_key()));
    token_senders.push_back(p.src);
  }
  // Group replayed tokens by key, preserving order.
  std::map<std::pair<std::int64_t, int>, std::vector<net::IPv4>> expected;
  for (std::size_t i = 0; i < token_keys.size(); ++i) {
    expected[token_keys[i]].push_back(token_senders[i]);
  }
  // Collect corpus sentences as sender sequences and match them against
  // expected groups with >= 2 tokens.
  std::multiset<std::vector<net::IPv4>> got;
  for (const auto& sentence : corpus_.sentences) {
    std::vector<net::IPv4> seq;
    for (const WordId id : sentence) seq.push_back(corpus_.words[id]);
    got.insert(seq);
  }
  std::multiset<std::vector<net::IPv4>> want;
  for (const auto& [key, seq] : expected) {
    if (seq.size() >= 2) want.insert(seq);
  }
  EXPECT_EQ(got, want);
}

TEST_P(CorpusProperty, NoSingletonSentences) {
  for (const auto& sentence : corpus_.sentences) {
    EXPECT_GE(sentence.size(), 2u);
  }
}

TEST_P(CorpusProperty, AllWordIdsInRange) {
  for (const auto& sentence : corpus_.sentences) {
    for (const WordId id : sentence) {
      EXPECT_LT(id, corpus_.vocabulary_size());
    }
  }
}

TEST_P(CorpusProperty, BuildIsDeterministic) {
  const Corpus again = build_corpus(trace_, services_, options_);
  EXPECT_EQ(again.words, corpus_.words);
  EXPECT_EQ(again.sentences, corpus_.sentences);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorpusProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace darkvec::corpus
