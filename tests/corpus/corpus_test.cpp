#include "darkvec/corpus/corpus.hpp"

#include <gtest/gtest.h>

#include "darkvec/net/time.hpp"

namespace darkvec::corpus {
namespace {

using net::IPv4;
using net::Packet;
using net::Protocol;
using net::Trace;

const IPv4 kA{10, 0, 0, 1};
const IPv4 kB{10, 0, 0, 2};
const IPv4 kC{10, 0, 0, 3};

Packet pkt(std::int64_t offset, IPv4 src, std::uint16_t port,
           Protocol proto = Protocol::kTcp) {
  Packet p;
  p.ts = net::kTraceEpoch + offset;
  p.src = src;
  p.dst_port = port;
  p.proto = proto;
  return p;
}

CorpusOptions no_filter() {
  CorpusOptions o;
  o.min_packets = 1;
  return o;
}

TEST(Corpus, SentencePerServicePerWindow) {
  Trace t;
  // Window 0: telnet (A,B), ssh (A,C). Window 1: telnet (B,A).
  t.push_back(pkt(10, kA, 23));
  t.push_back(pkt(20, kB, 23));
  t.push_back(pkt(30, kA, 22));
  t.push_back(pkt(40, kC, 22));
  t.push_back(pkt(3700, kB, 23));
  t.push_back(pkt(3800, kA, 23));
  t.sort();
  const DomainServiceMap services;
  const Corpus c = build_corpus(t, services, no_filter());
  ASSERT_EQ(c.sentences.size(), 3u);
  // Deterministic order: (window 0, Telnet), (window 0, SSH), (window 1,
  // Telnet). Telnet id < SSH id in Table 7 order.
  EXPECT_EQ(c.sentences[0].size(), 2u);
  EXPECT_EQ(c.words[c.sentences[0][0]], kA);
  EXPECT_EQ(c.words[c.sentences[0][1]], kB);
  EXPECT_EQ(c.words[c.sentences[1][0]], kA);
  EXPECT_EQ(c.words[c.sentences[1][1]], kC);
  EXPECT_EQ(c.words[c.sentences[2][0]], kB);
  EXPECT_EQ(c.words[c.sentences[2][1]], kA);
}

TEST(Corpus, SingleServiceMergesEverything) {
  Trace t;
  t.push_back(pkt(10, kA, 23));
  t.push_back(pkt(20, kB, 445));
  t.push_back(pkt(30, kC, 53, Protocol::kUdp));
  t.sort();
  const SingleServiceMap services;
  const Corpus c = build_corpus(t, services, no_filter());
  ASSERT_EQ(c.sentences.size(), 1u);
  EXPECT_EQ(c.sentences[0].size(), 3u);
}

TEST(Corpus, ActivityFilterDropsLightSenders) {
  Trace t;
  for (int i = 0; i < 10; ++i) t.push_back(pkt(10 + i, kA, 23));
  t.push_back(pkt(50, kB, 23));  // only one packet
  t.sort();
  const SingleServiceMap services;
  CorpusOptions options;
  options.min_packets = 10;
  const Corpus c = build_corpus(t, services, options);
  EXPECT_EQ(c.vocabulary_size(), 1u);
  EXPECT_EQ(c.id_of(kA), 0u);
  EXPECT_EQ(c.id_of(kB), Corpus::kNoWord);
  EXPECT_EQ(c.tokens(), 10u);
}

TEST(Corpus, RepeatedSenderStaysRepeated) {
  // A sender probing twice in a window appears twice in the sentence.
  Trace t;
  t.push_back(pkt(10, kA, 23));
  t.push_back(pkt(20, kA, 23));
  t.push_back(pkt(30, kB, 23));
  t.sort();
  const Corpus c = build_corpus(t, SingleServiceMap{}, no_filter());
  ASSERT_EQ(c.sentences.size(), 1u);
  EXPECT_EQ(c.sentences[0].size(), 3u);
  EXPECT_EQ(c.sentences[0][0], c.sentences[0][1]);
}

TEST(Corpus, SingleTokenSentencesAreDropped) {
  // One packet alone in its (service, window) cell carries no
  // co-occurrence signal; such sentences are dropped.
  Trace t;
  t.push_back(pkt(10, kA, 23));
  t.push_back(pkt(20, kA, 22));
  t.push_back(pkt(30, kA, 22));
  t.sort();
  const Corpus c = build_corpus(t, DomainServiceMap{}, no_filter());
  ASSERT_EQ(c.sentences.size(), 1u);  // only the SSH pair survives
  EXPECT_EQ(c.sentences[0].size(), 2u);
}

TEST(Corpus, WindowBoundaryIsSharp) {
  Trace t;
  CorpusOptions options = no_filter();
  options.delta_t = 100;
  t.push_back(pkt(0, kA, 23));
  t.push_back(pkt(99, kB, 23));   // same window
  t.push_back(pkt(100, kA, 23));  // next window
  t.push_back(pkt(199, kC, 23));
  t.sort();
  const Corpus c = build_corpus(t, SingleServiceMap{}, options);
  ASSERT_EQ(c.sentences.size(), 2u);
  EXPECT_EQ(c.sentences[0].size(), 2u);
  EXPECT_EQ(c.sentences[1].size(), 2u);
}

TEST(Corpus, WordIdsAssignedInFirstAppearanceOrder) {
  Trace t;
  t.push_back(pkt(10, kC, 23));
  t.push_back(pkt(20, kA, 23));
  t.push_back(pkt(30, kC, 23));
  t.push_back(pkt(40, kB, 23));
  t.sort();
  const Corpus c = build_corpus(t, SingleServiceMap{}, no_filter());
  EXPECT_EQ(c.words[0], kC);
  EXPECT_EQ(c.words[1], kA);
  EXPECT_EQ(c.words[2], kB);
  EXPECT_EQ(c.id_of(kC), 0u);
  EXPECT_EQ(c.id_of(kB), 2u);
}

TEST(Corpus, IdsAndWordsAreInverse) {
  Trace t;
  for (int i = 0; i < 20; ++i) {
    t.push_back(pkt(i, IPv4{10, 0, 1, static_cast<std::uint8_t>(i % 5)}, 23));
  }
  t.sort();
  const Corpus c = build_corpus(t, SingleServiceMap{}, no_filter());
  for (std::size_t i = 0; i < c.words.size(); ++i) {
    EXPECT_EQ(c.id_of(c.words[i]), i);
  }
}

TEST(Corpus, EmptyTrace) {
  const Corpus c = build_corpus(Trace{}, SingleServiceMap{}, no_filter());
  EXPECT_EQ(c.vocabulary_size(), 0u);
  EXPECT_TRUE(c.sentences.empty());
  EXPECT_EQ(c.tokens(), 0u);
}

TEST(Corpus, TokensSumsAllSentences) {
  Trace t;
  t.push_back(pkt(10, kA, 23));
  t.push_back(pkt(20, kB, 23));
  t.push_back(pkt(30, kA, 22));
  t.push_back(pkt(40, kB, 22));
  t.sort();
  const Corpus c = build_corpus(t, DomainServiceMap{}, no_filter());
  EXPECT_EQ(c.tokens(), 4u);
}

// ---- count_skipgrams -----------------------------------------------------

Corpus corpus_of(std::vector<std::vector<std::uint32_t>> sentences) {
  Corpus c;
  c.sentences = std::move(sentences);
  return c;
}

TEST(CountSkipgrams, PairSentence) {
  // Two tokens, any window >= 1: each token sees the other -> 2 pairs.
  EXPECT_EQ(count_skipgrams(corpus_of({{0, 1}}), 1), 2u);
  EXPECT_EQ(count_skipgrams(corpus_of({{0, 1}}), 25), 2u);
}

TEST(CountSkipgrams, WindowOneOnChain) {
  // n tokens, c=1: 2(n-1) pairs.
  EXPECT_EQ(count_skipgrams(corpus_of({{0, 1, 2, 3, 4}}), 1), 8u);
}

TEST(CountSkipgrams, FullWindowIsAllOrderedPairs) {
  // c >= n-1: every ordered pair counts -> n(n-1).
  EXPECT_EQ(count_skipgrams(corpus_of({{0, 1, 2, 3, 4}}), 10), 20u);
}

TEST(CountSkipgrams, SumsAcrossSentences) {
  EXPECT_EQ(count_skipgrams(corpus_of({{0, 1}, {2, 3, 4}}), 2), 2u + 6u);
}

TEST(CountSkipgrams, EmptyCorpus) {
  EXPECT_EQ(count_skipgrams(corpus_of({}), 5), 0u);
}

}  // namespace
}  // namespace darkvec::corpus
