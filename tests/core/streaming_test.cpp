#include "darkvec/core/streaming.hpp"

#include <gtest/gtest.h>

#include "darkvec/sim/scenario.hpp"
#include "darkvec/sim/simulator.hpp"

namespace darkvec {
namespace {

class Streaming : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::SimConfig config;
    config.days = 12;
    config.seed = 55;
    sim_ = new sim::SimResult(
        sim::DarknetSimulator(config).run(sim::tiny_scenario()));
    StreamingConfig stream;
    stream.window_seconds = 4 * net::kSecondsPerDay;
    stream.step_seconds = 2 * net::kSecondsPerDay;
    stream.darkvec.w2v.dim = 16;
    stream.darkvec.w2v.epochs = 4;
    stream.darkvec.corpus.min_packets = 5;
    snapshots_ = new std::vector<StreamSnapshot>(
        run_streaming(sim_->trace, stream));
  }
  static void TearDownTestSuite() {
    delete snapshots_;
    delete sim_;
    snapshots_ = nullptr;
    sim_ = nullptr;
  }

  static sim::SimResult* sim_;
  static std::vector<StreamSnapshot>* snapshots_;
};

sim::SimResult* Streaming::sim_ = nullptr;
std::vector<StreamSnapshot>* Streaming::snapshots_ = nullptr;

TEST_F(Streaming, ProducesExpectedSnapshotSchedule) {
  // 12 days, window 4, step 2: ends at day 4, 6, 8, 10, 12 -> 5 snapshots.
  ASSERT_EQ(snapshots_->size(), 5u);
  for (std::size_t i = 0; i < snapshots_->size(); ++i) {
    const StreamSnapshot& s = (*snapshots_)[i];
    EXPECT_EQ(s.window_end - s.window_start, 4 * net::kSecondsPerDay);
    if (i > 0) {
      EXPECT_EQ(s.window_end - (*snapshots_)[i - 1].window_end,
                2 * net::kSecondsPerDay);
    }
  }
}

TEST_F(Streaming, SnapshotsAreSelfConsistent) {
  for (const StreamSnapshot& s : *snapshots_) {
    EXPECT_EQ(s.senders.size(), s.embedding.size());
    EXPECT_EQ(s.senders.size(), s.clustering.assignment.size());
    EXPECT_GT(s.clustering.count, 0);
  }
}

TEST_F(Streaming, SuccessiveSnapshotsAreAligned) {
  for (std::size_t i = 1; i < snapshots_->size(); ++i) {
    // Persistent populations make anchors plentiful; aligned spaces should
    // agree well on them.
    EXPECT_GT((*snapshots_)[i].alignment_similarity, 0.3) << "snapshot " << i;
  }
  EXPECT_EQ((*snapshots_)[0].alignment_similarity, 0.0);
}

TEST_F(Streaming, AlignedSpacesKeepPersistentSendersStable) {
  // A sender present in consecutive snapshots should sit in a similar
  // direction of the common space (alignment composes rotations).
  const StreamSnapshot& a = (*snapshots_)[2];
  const StreamSnapshot& b = (*snapshots_)[3];
  std::size_t checked = 0;
  std::size_t stable = 0;
  for (std::size_t i = 0; i < a.senders.size(); ++i) {
    const auto j = std::find(b.senders.begin(), b.senders.end(),
                             a.senders[i]);
    if (j == b.senders.end()) continue;
    ++checked;
    const auto jb = static_cast<std::size_t>(j - b.senders.begin());
    if (w2v::cosine(a.embedding.vec(i), b.embedding.vec(jb)) > 0.2) {
      ++stable;
    }
  }
  ASSERT_GT(checked, 20u);
  EXPECT_GT(static_cast<double>(stable) / static_cast<double>(checked), 0.6);
}

TEST_F(Streaming, TrackGroupFollowsTheBotnet) {
  std::vector<net::IPv4> botnet;
  for (const auto& [ip, cls] : sim_->labels) {
    if (cls == sim::GtClass::kMirai) botnet.push_back(ip);
  }
  const auto tracks = track_group(*snapshots_, botnet);
  ASSERT_EQ(tracks.size(), snapshots_->size());
  for (const GroupTrack& t : tracks) {
    EXPECT_GT(t.present, 10u);
    // A solid core of the group sits in one cluster (Louvain may split a
    // near-uniform region into a few sub-communities).
    EXPECT_GE(t.clustered_together * 3, t.present);
    EXPECT_GE(t.cluster_size, t.clustered_together);
  }
}

TEST(StreamingEdge, EmptyTraceAndBadConfig) {
  StreamingConfig config;
  EXPECT_TRUE(run_streaming(net::Trace{}, config).empty());
  sim::SimConfig sim_config;
  sim_config.days = 2;
  const auto sim = sim::DarknetSimulator(sim_config).run(
      sim::tiny_scenario());
  config.window_seconds = 0;
  EXPECT_TRUE(run_streaming(sim.trace, config).empty());
}

TEST(StreamingEdge, TrackGroupOnEmptyInputs) {
  EXPECT_TRUE(track_group({}, {}).empty());
}

}  // namespace
}  // namespace darkvec
