#include "darkvec/core/streaming.hpp"

#include <gtest/gtest.h>

#include "darkvec/sim/scenario.hpp"
#include "darkvec/sim/simulator.hpp"

namespace darkvec {
namespace {

class Streaming : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::SimConfig config;
    config.days = 12;
    config.seed = 55;
    sim_ = new sim::SimResult(
        sim::DarknetSimulator(config).run(sim::tiny_scenario()));
    StreamingConfig stream;
    stream.window_seconds = 4 * net::kSecondsPerDay;
    stream.step_seconds = 2 * net::kSecondsPerDay;
    stream.darkvec.w2v.dim = 16;
    stream.darkvec.w2v.epochs = 4;
    stream.darkvec.corpus.min_packets = 5;
    snapshots_ = new std::vector<StreamSnapshot>(
        run_streaming(sim_->trace, stream));
  }
  static void TearDownTestSuite() {
    delete snapshots_;
    delete sim_;
    snapshots_ = nullptr;
    sim_ = nullptr;
  }

  static sim::SimResult* sim_;
  static std::vector<StreamSnapshot>* snapshots_;
};

sim::SimResult* Streaming::sim_ = nullptr;
std::vector<StreamSnapshot>* Streaming::snapshots_ = nullptr;

TEST_F(Streaming, ProducesExpectedSnapshotSchedule) {
  // 12 days, window 4, step 2: ends at day 4, 6, 8, 10, 12 -> 5 snapshots.
  ASSERT_EQ(snapshots_->size(), 5u);
  for (std::size_t i = 0; i < snapshots_->size(); ++i) {
    const StreamSnapshot& s = (*snapshots_)[i];
    EXPECT_EQ(s.window_end - s.window_start, 4 * net::kSecondsPerDay);
    if (i > 0) {
      EXPECT_EQ(s.window_end - (*snapshots_)[i - 1].window_end,
                2 * net::kSecondsPerDay);
    }
  }
}

TEST_F(Streaming, SnapshotsAreSelfConsistent) {
  for (const StreamSnapshot& s : *snapshots_) {
    EXPECT_EQ(s.senders.size(), s.embedding.size());
    EXPECT_EQ(s.senders.size(), s.clustering.assignment.size());
    EXPECT_GT(s.clustering.count, 0);
  }
}

TEST_F(Streaming, SuccessiveSnapshotsAreAligned) {
  for (std::size_t i = 1; i < snapshots_->size(); ++i) {
    // Persistent populations make anchors plentiful; aligned spaces should
    // agree well on them.
    EXPECT_GT((*snapshots_)[i].alignment_similarity, 0.3) << "snapshot " << i;
  }
  EXPECT_EQ((*snapshots_)[0].alignment_similarity, 0.0);
}

TEST_F(Streaming, AlignedSpacesKeepPersistentSendersStable) {
  // A sender present in consecutive snapshots should sit in a similar
  // direction of the common space (alignment composes rotations).
  const StreamSnapshot& a = (*snapshots_)[2];
  const StreamSnapshot& b = (*snapshots_)[3];
  std::size_t checked = 0;
  std::size_t stable = 0;
  for (std::size_t i = 0; i < a.senders.size(); ++i) {
    const auto j = std::find(b.senders.begin(), b.senders.end(),
                             a.senders[i]);
    if (j == b.senders.end()) continue;
    ++checked;
    const auto jb = static_cast<std::size_t>(j - b.senders.begin());
    if (w2v::cosine(a.embedding.vec(i), b.embedding.vec(jb)) > 0.2) {
      ++stable;
    }
  }
  ASSERT_GT(checked, 20u);
  EXPECT_GT(static_cast<double>(stable) / static_cast<double>(checked), 0.6);
}

TEST_F(Streaming, TrackGroupFollowsTheBotnet) {
  std::vector<net::IPv4> botnet;
  for (const auto& [ip, cls] : sim_->labels) {
    if (cls == sim::GtClass::kMirai) botnet.push_back(ip);
  }
  const auto tracks = track_group(*snapshots_, botnet);
  ASSERT_EQ(tracks.size(), snapshots_->size());
  for (const GroupTrack& t : tracks) {
    EXPECT_GT(t.present, 10u);
    // A solid core of the group sits in one cluster (Louvain may split a
    // near-uniform region into a few sub-communities).
    EXPECT_GE(t.clustered_together * 3, t.present);
    EXPECT_GE(t.cluster_size, t.clustered_together);
  }
}

TEST(StreamingEdge, EmptyTraceAndBadConfig) {
  StreamingConfig config;
  EXPECT_TRUE(run_streaming(net::Trace{}, config).empty());
  sim::SimConfig sim_config;
  sim_config.days = 2;
  const auto sim = sim::DarknetSimulator(sim_config).run(
      sim::tiny_scenario());
  config.window_seconds = 0;
  EXPECT_TRUE(run_streaming(sim.trace, config).empty());
}

TEST(StreamingEdge, TrackGroupOnEmptyInputs) {
  EXPECT_TRUE(track_group({}, {}).empty());
}

// Regression: a window whose senders all fall below the activity
// threshold used to `continue` without advancing the window end, looping
// forever. Such windows must now terminate and surface as degraded
// snapshots, as must all-quiet windows.
TEST(StreamingEdge, QuietAndSubThresholdWindowsTerminate) {
  net::Trace trace;
  const std::int64_t t0 = net::kTraceEpoch;
  const auto packet = [&](std::int64_t offset, std::uint8_t host) {
    net::Packet p;
    p.ts = t0 + offset;
    p.src = net::IPv4{10, 0, 0, host};
    p.dst_port = 23;
    p.proto = net::Protocol::kTcp;
    trace.push_back(p);
  };
  // Window 1 [t0, t0+100): six senders comfortably above the threshold.
  for (std::uint8_t host = 1; host <= 6; ++host) {
    for (int i = 0; i < 20; ++i) {
      packet((i * 5 + host) % 100, host);
    }
  }
  // Window 2 [t0+100, t0+200): silent.
  // Window 3 [t0+200, t0+300): one sender with only two packets, below
  // the min_packets activity filter -> empty vocabulary.
  packet(250, 99);
  packet(260, 99);
  trace.sort();

  StreamingConfig stream;
  stream.window_seconds = 100;
  stream.step_seconds = 100;
  stream.darkvec.w2v.dim = 8;
  stream.darkvec.w2v.epochs = 2;

  const auto snapshots = run_streaming(trace, stream);
  ASSERT_EQ(snapshots.size(), 3u);
  for (std::size_t i = 0; i < snapshots.size(); ++i) {
    EXPECT_EQ(snapshots[i].window_end,
              t0 + 100 * static_cast<std::int64_t>(i + 1));
  }
  EXPECT_TRUE(snapshots[1].degraded);
  EXPECT_EQ(snapshots[1].degraded_reason, "no packets in window");
  EXPECT_TRUE(snapshots[2].degraded);
  EXPECT_EQ(snapshots[2].degraded_reason,
            "no senders above the activity threshold");

  // With placeholders off, degraded windows are silently skipped but the
  // schedule still advances to completion.
  stream.record_degraded = false;
  const auto quiet = run_streaming(trace, stream);
  for (const StreamSnapshot& s : quiet) EXPECT_FALSE(s.degraded);
  EXPECT_LT(quiet.size(), snapshots.size());
}

}  // namespace
}  // namespace darkvec
