#include "darkvec/core/inspector.hpp"

#include <gtest/gtest.h>

#include "darkvec/net/time.hpp"

namespace darkvec {
namespace {

using net::IPv4;
using net::Packet;
using net::PortKey;
using net::Protocol;

Packet pkt(std::int64_t offset, IPv4 src, std::uint16_t port,
           bool fingerprint = false) {
  Packet p;
  p.ts = net::kTraceEpoch + offset;
  p.src = src;
  p.dst_port = port;
  p.mirai_fingerprint = fingerprint;
  return p;
}

// Cluster 0: two bots in the same /24 hitting 23 with fingerprints.
// Cluster 1: one scanner hitting 80/443.
const IPv4 kBot1{10, 5, 5, 1};
const IPv4 kBot2{10, 5, 5, 2};
const IPv4 kScan{172, 16, 0, 1};

struct Fixture {
  net::Trace trace;
  corpus::Corpus corpus;
  std::vector<int> assignment;
  sim::GroupMap oracle;
};

Fixture make_fixture() {
  Fixture f;
  f.trace.push_back(pkt(1, kBot1, 23, true));
  f.trace.push_back(pkt(2, kBot1, 23, true));
  f.trace.push_back(pkt(3, kBot1, 2323, true));
  f.trace.push_back(pkt(4, kBot2, 23, false));
  f.trace.push_back(pkt(5, kScan, 80));
  f.trace.push_back(pkt(6, kScan, 443));
  f.trace.sort();
  f.corpus.words = {kBot1, kBot2, kScan};
  for (std::size_t i = 0; i < 3; ++i) {
    f.corpus.ids.emplace(f.corpus.words[i],
                         static_cast<corpus::WordId>(i));
  }
  f.assignment = {0, 0, 1};
  f.oracle = {{kBot1, "mirai"}, {kBot2, "mirai"}, {kScan, "shodan"}};
  return f;
}

TEST(Inspector, ClusterSizesAndOrdering) {
  const Fixture f = make_fixture();
  const auto clusters =
      inspect_clusters(f.trace, f.corpus, f.assignment, f.oracle);
  ASSERT_EQ(clusters.size(), 2u);
  // Sorted by decreasing size.
  EXPECT_EQ(clusters[0].size(), 2u);
  EXPECT_EQ(clusters[1].size(), 1u);
  EXPECT_EQ(clusters[0].id, 0);
}

TEST(Inspector, PacketAndPortStatistics) {
  const Fixture f = make_fixture();
  const auto clusters =
      inspect_clusters(f.trace, f.corpus, f.assignment, f.oracle);
  const ClusterInfo& bots = clusters[0];
  EXPECT_EQ(bots.packets, 4u);
  ASSERT_EQ(bots.ports.size(), 2u);
  ASSERT_FALSE(bots.top_ports.empty());
  EXPECT_EQ(bots.top_ports[0].first, (PortKey{23, Protocol::kTcp}));
  EXPECT_DOUBLE_EQ(bots.top_ports[0].second, 0.75);
  EXPECT_DOUBLE_EQ(bots.top_ports[1].second, 0.25);
}

TEST(Inspector, SubnetStatistics) {
  const Fixture f = make_fixture();
  const auto clusters =
      inspect_clusters(f.trace, f.corpus, f.assignment, f.oracle);
  EXPECT_EQ(clusters[0].distinct_slash24, 1u);
  EXPECT_EQ(clusters[0].distinct_slash16, 1u);
  EXPECT_EQ(clusters[1].distinct_slash24, 1u);
}

TEST(Inspector, FingerprintFractionCountsSenders) {
  const Fixture f = make_fixture();
  const auto clusters =
      inspect_clusters(f.trace, f.corpus, f.assignment, f.oracle);
  // Only kBot1 sent fingerprinted packets: 1 of 2 members.
  EXPECT_DOUBLE_EQ(clusters[0].fingerprint_fraction, 0.5);
  EXPECT_DOUBLE_EQ(clusters[1].fingerprint_fraction, 0.0);
}

TEST(Inspector, OracleComposition) {
  const Fixture f = make_fixture();
  const auto clusters =
      inspect_clusters(f.trace, f.corpus, f.assignment, f.oracle);
  EXPECT_EQ(clusters[0].dominant_group, "mirai");
  EXPECT_DOUBLE_EQ(clusters[0].dominant_fraction, 1.0);
  EXPECT_EQ(clusters[0].group_composition.at("mirai"), 2u);
  EXPECT_EQ(clusters[1].dominant_group, "shodan");
}

TEST(Inspector, SilhouettePassThrough) {
  const Fixture f = make_fixture();
  const std::vector<double> sil = {0.8, 0.6, 0.4};
  const auto clusters =
      inspect_clusters(f.trace, f.corpus, f.assignment, f.oracle, sil);
  EXPECT_NEAR(clusters[0].silhouette, 0.7, 1e-12);
  EXPECT_NEAR(clusters[1].silhouette, 0.4, 1e-12);
}

TEST(Inspector, MissingOracleEntriesBecomeQuestionMark) {
  Fixture f = make_fixture();
  f.oracle.erase(kScan);
  const auto clusters =
      inspect_clusters(f.trace, f.corpus, f.assignment, f.oracle);
  EXPECT_EQ(clusters[1].dominant_group, "?");
}

TEST(Inspector, PacketsFromNonMembersIgnored) {
  Fixture f = make_fixture();
  f.trace.push_back(pkt(100, IPv4{9, 9, 9, 9}, 23));
  f.trace.sort();
  const auto clusters =
      inspect_clusters(f.trace, f.corpus, f.assignment, f.oracle);
  EXPECT_EQ(clusters[0].packets + clusters[1].packets, 6u);
}

TEST(PortJaccard, BetweenClusters) {
  ClusterInfo a;
  a.ports = {{23, Protocol::kTcp}, {80, Protocol::kTcp}};
  ClusterInfo b;
  b.ports = {{80, Protocol::kTcp}, {443, Protocol::kTcp}};
  EXPECT_NEAR(port_jaccard(a, b), 1.0 / 3.0, 1e-12);
}

TEST(PortJaccard, MeanPairwise) {
  ClusterInfo a;
  a.ports = {{1, Protocol::kTcp}};
  ClusterInfo b;
  b.ports = {{1, Protocol::kTcp}};
  ClusterInfo c;
  c.ports = {{2, Protocol::kTcp}};
  const std::vector<ClusterInfo> clusters = {a, b, c};
  // Pairs: (a,b)=1, (a,c)=0, (b,c)=0 -> mean 1/3.
  EXPECT_NEAR(mean_pairwise_port_jaccard(clusters), 1.0 / 3.0, 1e-12);
}

TEST(PortJaccard, FewerThanTwoClusters) {
  const std::vector<ClusterInfo> one(1);
  EXPECT_EQ(mean_pairwise_port_jaccard(one), 0.0);
}

}  // namespace
}  // namespace darkvec
