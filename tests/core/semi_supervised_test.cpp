#include "darkvec/core/semi_supervised.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "darkvec/net/time.hpp"
#include "darkvec/sim/scenario.hpp"
#include "darkvec/sim/simulator.hpp"

namespace darkvec {
namespace {

using net::IPv4;
using net::Packet;

Packet pkt(std::int64_t offset, IPv4 src, std::uint16_t port = 23) {
  Packet p;
  p.ts = net::kTraceEpoch + offset;
  p.src = src;
  p.dst_port = port;
  return p;
}

TEST(LastDayActive, RequiresLastDayPresenceAndGlobalActivity) {
  const IPv4 active_lastday{10, 0, 0, 1};
  const IPv4 active_early{10, 0, 0, 2};
  const IPv4 light_lastday{10, 0, 0, 3};
  net::Trace t;
  for (int i = 0; i < 12; ++i) {
    t.push_back(pkt(i * 3600, active_lastday));
    t.push_back(pkt(i * 3600 + 1, active_early));
  }
  // active_lastday reappears on the final day; active_early does not.
  t.push_back(pkt(5 * net::kSecondsPerDay - 100, active_lastday));
  t.push_back(pkt(5 * net::kSecondsPerDay - 90, light_lastday));
  t.sort();
  const auto eval = last_day_active_senders(t, 10);
  ASSERT_EQ(eval.size(), 1u);
  EXPECT_EQ(eval[0], active_lastday);
}

TEST(LastDayActive, EmptyTrace) {
  EXPECT_TRUE(last_day_active_senders(net::Trace{}, 10).empty());
}

TEST(LastDayActive, ResultIsSortedAndUnique) {
  net::Trace t;
  for (int s = 5; s >= 1; --s) {
    for (int i = 0; i < 12; ++i) {
      t.push_back(pkt(i * 7000,
                      IPv4{10, 0, 0, static_cast<std::uint8_t>(s)}));
    }
  }
  t.sort();
  const auto eval = last_day_active_senders(t, 10);
  EXPECT_TRUE(std::ranges::is_sorted(eval));
  EXPECT_EQ(std::ranges::adjacent_find(eval), eval.end());
}

// ---- end-to-end semi-supervised fixture ----------------------------------

class SemiSupervised : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::SimConfig config;
    config.days = 7;
    config.seed = 5;
    sim_ = new sim::SimResult(
        sim::DarknetSimulator(config).run(sim::tiny_scenario()));
    DarkVecConfig dv_config;
    dv_config.w2v.dim = 24;
    dv_config.w2v.epochs = 8;
    dv_config.w2v.seed = 9;
    dv_ = new DarkVec(dv_config);
    dv_->fit(sim_->trace);
  }
  static void TearDownTestSuite() {
    delete dv_;
    delete sim_;
    dv_ = nullptr;
    sim_ = nullptr;
  }

  static sim::SimResult* sim_;
  static DarkVec* dv_;
};

sim::SimResult* SemiSupervised::sim_ = nullptr;
DarkVec* SemiSupervised::dv_ = nullptr;

TEST_F(SemiSupervised, HighAccuracyOnToyScenario) {
  const auto eval_ips = last_day_active_senders(sim_->trace);
  const auto eval = evaluate_knn(*dv_, sim_->labels, eval_ips, 7);
  EXPECT_GT(eval.accuracy, 0.9);
  EXPECT_GT(eval.covered, 0u);
}

TEST_F(SemiSupervised, CoverageCountsEmbeddedEvalSenders) {
  const auto eval_ips = last_day_active_senders(sim_->trace);
  const auto eval = evaluate_knn(*dv_, sim_->labels, eval_ips, 7);
  EXPECT_EQ(eval.total, eval_ips.size());
  EXPECT_LE(eval.covered, eval.total);
  EXPECT_GT(eval.coverage(), 0.9);
}

TEST_F(SemiSupervised, MissingSendersReduceCoverage) {
  std::vector<IPv4> eval_ips = last_day_active_senders(sim_->trace);
  const std::size_t real = eval_ips.size();
  eval_ips.push_back(IPv4{1, 2, 3, 4});  // never seen
  const auto eval = evaluate_knn(*dv_, sim_->labels, eval_ips, 7);
  EXPECT_EQ(eval.total, real + 1);
  EXPECT_LE(eval.covered, real);
}

TEST_F(SemiSupervised, ReportSupportsMatchLabels) {
  const auto eval_ips = last_day_active_senders(sim_->trace);
  const auto eval = evaluate_knn(*dv_, sim_->labels, eval_ips, 7);
  std::size_t labeled = 0;
  for (const IPv4 ip : eval_ips) {
    if (dv_->index_of(ip) &&
        sim::label_of(sim_->labels, ip) != sim::GtClass::kUnknown) {
      ++labeled;
    }
  }
  std::size_t support_sum = 0;
  for (std::size_t c = 0; c < sim::kNumKnownClasses; ++c) {
    support_sum += eval.report.scores(static_cast<int>(c)).support;
  }
  EXPECT_EQ(support_sum, labeled);
}

TEST_F(SemiSupervised, VectorOverloadMatchesDarkVecPath) {
  const auto eval_ips = last_day_active_senders(sim_->trace);
  const auto direct = evaluate_knn(*dv_, sim_->labels, eval_ips, 7);
  const auto via_vectors = evaluate_knn_vectors(
      dv_->embedding(), dv_->corpus().words, sim_->labels, eval_ips, 7);
  EXPECT_DOUBLE_EQ(direct.accuracy, via_vectors.accuracy);
  EXPECT_EQ(direct.covered, via_vectors.covered);
}

TEST_F(SemiSupervised, ExtensionProposalsAreUnknownAndSorted) {
  const auto candidates = extend_ground_truth(*dv_, sim_->labels, 7);
  for (const auto& c : candidates) {
    EXPECT_EQ(sim::label_of(sim_->labels, c.ip), sim::GtClass::kUnknown);
    EXPECT_NE(c.predicted, sim::GtClass::kUnknown);
    EXPECT_GE(c.avg_distance, 0.0);
  }
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    EXPECT_LE(candidates[i - 1].avg_distance, candidates[i].avg_distance);
  }
}

TEST_F(SemiSupervised, ExtensionRespectsClassDistanceThreshold) {
  const auto candidates = extend_ground_truth(*dv_, sim_->labels, 7);
  // Recompute the per-class max distance and verify no candidate exceeds
  // its class threshold.
  const auto& corpus = dv_->corpus();
  const auto& index = dv_->knn();
  std::array<double, sim::kNumGtClasses> max_dist{};
  for (std::size_t i = 0; i < corpus.words.size(); ++i) {
    const auto cls = sim::label_of(sim_->labels, corpus.words[i]);
    if (cls == sim::GtClass::kUnknown) continue;
    const auto neighbors = index.query(i, 7);
    double d = 0;
    for (const auto& nb : neighbors) d += 1.0 - nb.similarity;
    d /= static_cast<double>(neighbors.size());
    max_dist[static_cast<std::size_t>(cls)] =
        std::max(max_dist[static_cast<std::size_t>(cls)], d);
  }
  for (const auto& c : candidates) {
    EXPECT_LE(c.avg_distance,
              max_dist[static_cast<std::size_t>(c.predicted)] + 1e-12);
  }
}

}  // namespace
}  // namespace darkvec
