#include "darkvec/core/model_io.hpp"
#include "darkvec/core/contracts.hpp"

#include <gtest/gtest.h>

#include <fstream>

namespace darkvec {
namespace {

SenderModel small_model() {
  SenderModel model;
  model.senders = {net::IPv4{10, 0, 0, 1}, net::IPv4{192, 168, 1, 2},
                   net::IPv4{172, 16, 0, 3}};
  model.embedding = w2v::Embedding(3, 4);
  for (std::size_t i = 0; i < 3; ++i) {
    for (int d = 0; d < 4; ++d) {
      model.embedding.vec(i)[static_cast<std::size_t>(d)] =
          static_cast<float>(i * 10 + d);
    }
  }
  return model;
}

TEST(ModelIo, RoundTrip) {
  const SenderModel original = small_model();
  const std::string prefix = ::testing::TempDir() + "/darkvec_model";
  save_model(prefix, original);
  const SenderModel loaded = load_model(prefix);
  EXPECT_EQ(loaded.senders, original.senders);
  EXPECT_EQ(loaded.embedding.data(), original.embedding.data());
  EXPECT_EQ(loaded.embedding.dim(), 4);
}

TEST(ModelIo, IndexOf) {
  const SenderModel model = small_model();
  EXPECT_EQ(model.index_of(net::IPv4{192, 168, 1, 2}), 1);
  EXPECT_EQ(model.index_of(net::IPv4{9, 9, 9, 9}), -1);
}

TEST(ModelIo, SaveRejectsMismatchedSizes) {
  SenderModel model = small_model();
  model.senders.pop_back();
  EXPECT_THROW(save_model(::testing::TempDir() + "/bad", model),
               darkvec::ContractViolation);
}

TEST(ModelIo, LoadRejectsMissingFiles) {
  EXPECT_THROW(load_model("/nonexistent/prefix"), std::runtime_error);
}

TEST(ModelIo, LoadRejectsVocabMismatch) {
  const SenderModel original = small_model();
  const std::string prefix = ::testing::TempDir() + "/darkvec_model_short";
  save_model(prefix, original);
  // Truncate the vocab file.
  std::ofstream vocab(prefix + ".vocab");
  vocab << "10.0.0.1\n";
  vocab.close();
  EXPECT_THROW(load_model(prefix), std::runtime_error);
}

TEST(ModelIo, LoadRejectsBadAddress) {
  const SenderModel original = small_model();
  const std::string prefix = ::testing::TempDir() + "/darkvec_model_badip";
  save_model(prefix, original);
  std::ofstream vocab(prefix + ".vocab");
  vocab << "10.0.0.1\nnot-an-ip\n172.16.0.3\n";
  vocab.close();
  EXPECT_THROW(load_model(prefix), std::runtime_error);
}

TEST(ModelIo, LenientLoadDropsBadRowsWithTheirVectors) {
  const SenderModel original = small_model();
  const std::string prefix = ::testing::TempDir() + "/darkvec_model_lenient";
  save_model(prefix, original);
  std::ofstream vocab(prefix + ".vocab");
  vocab << "10.0.0.1\nnot-an-ip\n172.16.0.3\n";
  vocab.close();
  io::IoReport report;
  const SenderModel loaded =
      load_model(prefix, io::IoPolicy::lenient_with(10), &report);
  ASSERT_EQ(loaded.senders.size(), 2u);
  EXPECT_EQ(loaded.embedding.size(), 2u);
  EXPECT_EQ(loaded.senders[1], (net::IPv4{172, 16, 0, 3}));
  // Row 1 now holds the third sender's original vector.
  EXPECT_EQ(loaded.embedding.vec(1)[0], original.embedding.vec(2)[0]);
  EXPECT_EQ(report.records_skipped, 1u);
}

TEST(ModelIo, IndexOfStaysCurrentAfterInvalidate) {
  SenderModel model = small_model();
  EXPECT_EQ(model.index_of(net::IPv4{172, 16, 0, 3}), 2);  // builds index
  model.senders.push_back(net::IPv4{8, 8, 8, 8});
  model.invalidate_index();
  EXPECT_EQ(model.index_of(net::IPv4{8, 8, 8, 8}), 3);
  EXPECT_EQ(model.index_of(net::IPv4{10, 0, 0, 1}), 0);
}

TEST(ModelIo, IndexOfKeepsFirstRowOnDuplicates) {
  SenderModel model = small_model();
  model.senders.push_back(model.senders[0]);  // duplicate of row 0
  EXPECT_EQ(model.index_of(model.senders[0]), 0);
}

}  // namespace
}  // namespace darkvec
