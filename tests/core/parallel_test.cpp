#include "darkvec/core/parallel.hpp"

#include <gtest/gtest.h>

#include "darkvec/core/runtime/runtime.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <stdexcept>
#include <utility>
#include <vector>

namespace darkvec::core {
namespace {

TEST(ThreadPool, CoversEveryIterationExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.for_each_chunk(hits.size(), 7, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ChunkBoundariesDependOnlyOnGrain) {
  // Record the chunk boundaries for several pool sizes; they must agree.
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> seen;
  for (const int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    std::mutex m;
    std::vector<std::pair<std::size_t, std::size_t>> chunks;
    pool.for_each_chunk(103, 10, [&](std::size_t lo, std::size_t hi) {
      std::lock_guard lock(m);
      chunks.emplace_back(lo, hi);
    });
    std::sort(chunks.begin(), chunks.end());
    seen.push_back(std::move(chunks));
  }
  EXPECT_EQ(seen[0], seen[1]);
  EXPECT_EQ(seen[0], seen[2]);
  ASSERT_EQ(seen[0].size(), 11u);
  EXPECT_EQ(seen[0].back(), (std::pair<std::size_t, std::size_t>{100, 103}));
}

TEST(ThreadPool, ResultsIdenticalAcrossThreadCounts) {
  const std::size_t n = 4096;
  std::vector<double> reference;
  for (const int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    std::vector<double> out(n);
    pool.for_each_chunk(n, 64, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        out[i] = static_cast<double>(i) * 0.25 + 1.0;
      }
    });
    if (reference.empty()) {
      reference = std::move(out);
    } else {
      EXPECT_EQ(out, reference);
    }
  }
}

TEST(ThreadPool, EmptyRangeIsANoOp) {
  ThreadPool pool(4);
  bool called = false;
  pool.for_each_chunk(0, 8, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, PropagatesBodyException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.for_each_chunk(100, 5,
                          [&](std::size_t lo, std::size_t) {
                            if (lo == 50) {
                              throw std::runtime_error("boom");
                            }
                          }),
      std::runtime_error);
  // The pool must stay usable after an exception drained.
  std::atomic<int> count{0};
  pool.for_each_chunk(10, 2,
                      [&](std::size_t lo, std::size_t hi) {
                        count.fetch_add(static_cast<int>(hi - lo));
                      });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, NestedCallsRunInline) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(256);
  pool.for_each_chunk(16, 1, [&](std::size_t lo, std::size_t) {
    // A body that itself fans out must not deadlock.
    pool.for_each_chunk(16, 4, [&](std::size_t ilo, std::size_t ihi) {
      for (std::size_t j = ilo; j < ihi; ++j) {
        hits[lo * 16 + j].fetch_add(1);
      }
    });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, GlobalPoolIsResizable) {
  ThreadPool::set_global_threads(3);
  EXPECT_EQ(ThreadPool::global().size(), 3);
  ThreadPool::set_global_threads(1);
  EXPECT_EQ(ThreadPool::global().size(), 1);
  ThreadPool::set_global_threads(default_thread_count());
}

TEST(ThreadPool, SizeClampedToAtLeastOne) {
  ThreadPool pool(-2);
  EXPECT_EQ(pool.size(), 1);
  int sum = 0;
  pool.for_each_chunk(5, 2, [&](std::size_t lo, std::size_t hi) {
    sum += static_cast<int>(hi - lo);
  });
  EXPECT_EQ(sum, 5);
}

// ---------------------------------------------------------------------
// Shutdown semantics. These run under the TSan and ASan legs of
// check.sh: a join race or a worker touching freed pool state shows up
// there even when the plain build passes.

TEST(ThreadPoolShutdown, DestructionWithSlowBodiesJoinsCleanly) {
  // for_each_chunk blocks, so "pending work at destruction" means the
  // destructor runs the instant the last slow chunk drains — the
  // workers are parked mid-wakeup. Loop to catch the race windows.
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> done{0};
    {
      ThreadPool pool(4);
      pool.for_each_chunk(16, 1, [&](std::size_t, std::size_t) {
        for (volatile int spin = 0; spin < 1000; ++spin) {
        }
        done.fetch_add(1);
      });
    }  // destructor joins immediately after the barrier releases
    EXPECT_EQ(done.load(), 16);
  }
}

TEST(ThreadPoolShutdown, DestructionRightAfterWorkerExceptionIsClean) {
  for (int round = 0; round < 20; ++round) {
    ThreadPool pool(4);
    EXPECT_THROW(pool.for_each_chunk(64, 1,
                                     [&](std::size_t lo, std::size_t) {
                                       if (lo % 3 == 0) {
                                         throw std::runtime_error("boom");
                                       }
                                     }),
                 std::runtime_error);
    // Destructor runs here with workers freshly drained from an
    // abandoned job.
  }
}

TEST(ThreadPoolShutdown, OnlyFirstOfManyConcurrentExceptionsSurfaces) {
  ThreadPool pool(4);
  // Every chunk throws; exactly one exception must come out and the
  // rest must be swallowed by the drain, not terminate the process.
  EXPECT_THROW(pool.for_each_chunk(64, 1,
                                   [&](std::size_t, std::size_t) {
                                     throw std::runtime_error("each");
                                   }),
               std::runtime_error);
  std::atomic<int> count{0};
  pool.for_each_chunk(32, 4, [&](std::size_t lo, std::size_t hi) {
    count.fetch_add(static_cast<int>(hi - lo));
  });
  EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPoolShutdown, CancelDuringForEachChunkDrainsAndStaysUsable) {
  ThreadPool pool(4);
  for (int round = 0; round < 5; ++round) {
    runtime::RunContext ctx;
    ctx.trip_after_checks = 7;
    runtime::ContextScope scope(&ctx);
    EXPECT_THROW(
        pool.for_each_chunk(256, 1, [&](std::size_t, std::size_t) {}),
        runtime::Cancelled);
  }
  // With the tripped contexts gone the same workers run a full job.
  std::atomic<int> count{0};
  pool.for_each_chunk(64, 1, [&](std::size_t lo, std::size_t hi) {
    count.fetch_add(static_cast<int>(hi - lo));
  });
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPoolShutdown, RapidConstructDestroyCycles) {
  // Churn pools to shake out construction/teardown races (workers not
  // yet parked when the destructor flips the stop flag).
  for (int round = 0; round < 50; ++round) {
    ThreadPool pool(3);
    std::atomic<int> count{0};
    pool.for_each_chunk(8, 1, [&](std::size_t lo, std::size_t hi) {
      count.fetch_add(static_cast<int>(hi - lo));
    });
    EXPECT_EQ(count.load(), 8);
  }
}

}  // namespace
}  // namespace darkvec::core
