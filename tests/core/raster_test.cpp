#include "darkvec/core/raster.hpp"

#include <gtest/gtest.h>

#include "darkvec/net/time.hpp"

namespace darkvec {
namespace {

using net::IPv4;
using net::Packet;

Packet pkt(std::int64_t offset, IPv4 src) {
  Packet p;
  p.ts = net::kTraceEpoch + offset;
  p.src = src;
  p.dst_port = 23;
  return p;
}

const IPv4 kA{10, 0, 0, 1};
const IPv4 kB{10, 0, 0, 2};

TEST(Raster, MarksActiveBuckets) {
  net::Trace t;
  t.push_back(pkt(0, kA));
  t.push_back(pkt(250, kB));
  t.push_back(pkt(310, kA));
  t.sort();
  const auto raster = build_raster(t, {kA, kB}, 100);
  ASSERT_EQ(raster.senders.size(), 2u);
  ASSERT_EQ(raster.buckets(), 4u);
  EXPECT_TRUE(raster.presence[0][0]);
  EXPECT_FALSE(raster.presence[0][1]);
  EXPECT_FALSE(raster.presence[0][2]);
  EXPECT_TRUE(raster.presence[0][3]);
  EXPECT_FALSE(raster.presence[1][0]);
  EXPECT_TRUE(raster.presence[1][2]);
}

TEST(Raster, SendersWithoutPacketsStayEmpty) {
  net::Trace t;
  t.push_back(pkt(0, kA));
  const auto raster = build_raster(t, {kB}, 100);
  ASSERT_EQ(raster.presence.size(), 1u);
  for (const bool b : raster.presence[0]) EXPECT_FALSE(b);
}

TEST(Raster, EmptyInputs) {
  EXPECT_EQ(build_raster(net::Trace{}, {kA}, 100).buckets(), 0u);
  net::Trace t;
  t.push_back(pkt(0, kA));
  EXPECT_TRUE(build_raster(t, {}, 100).presence.empty());
  EXPECT_TRUE(build_raster(t, {kA}, 0).presence.empty());
}

TEST(Raster, RenderShowsHashesAndDots) {
  net::Trace t;
  t.push_back(pkt(0, kA));
  t.push_back(pkt(250, kA));
  t.sort();
  const auto raster = build_raster(t, {kA, kB}, 100);
  const std::string art = render_raster(raster, 0);
  EXPECT_EQ(art, "#.#\n...\n");
}

TEST(Raster, RenderSubsamplesRows) {
  net::Trace t;
  for (int i = 0; i < 20; ++i) {
    t.push_back(pkt(i, IPv4{10, 0, 0, static_cast<std::uint8_t>(i)}));
  }
  t.sort();
  std::vector<IPv4> senders;
  for (int i = 0; i < 20; ++i) {
    senders.push_back(IPv4{10, 0, 0, static_cast<std::uint8_t>(i)});
  }
  const auto raster = build_raster(t, senders, 100);
  const std::string art = render_raster(raster, 5);
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 5);
}

TEST(Raster, SendersByFirstSeenOrder) {
  net::Trace t;
  t.push_back(pkt(10, kB));
  t.push_back(pkt(20, kA));
  t.push_back(pkt(30, kB));
  t.sort();
  const auto order = senders_by_first_seen(t);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], kB);
  EXPECT_EQ(order[1], kA);
}

}  // namespace
}  // namespace darkvec
