#include "darkvec/core/transfer.hpp"
#include "darkvec/core/contracts.hpp"

#include <gtest/gtest.h>

#include "darkvec/core/darkvec.hpp"

#include <cmath>

#include "darkvec/net/time.hpp"
#include "darkvec/sim/rng.hpp"
#include "darkvec/sim/scenario.hpp"
#include "darkvec/sim/simulator.hpp"

namespace darkvec {
namespace {

/// Corpus stub: n words with synthetic addresses 10.0.x.y.
corpus::Corpus corpus_of(std::size_t n) {
  corpus::Corpus c;
  for (std::size_t i = 0; i < n; ++i) {
    const net::IPv4 ip{10, 0, static_cast<std::uint8_t>(i / 256),
                       static_cast<std::uint8_t>(i % 256)};
    c.ids.emplace(ip, static_cast<corpus::WordId>(i));
    c.words.push_back(ip);
  }
  return c;
}

w2v::Embedding random_embedding(std::size_t n, int dim, std::uint64_t seed) {
  sim::Rng rng(seed);
  w2v::Embedding e(n, dim);
  for (std::size_t i = 0; i < n; ++i) {
    for (int d = 0; d < dim; ++d) {
      e.vec(i)[static_cast<std::size_t>(d)] =
          static_cast<float>(rng.uniform(-1.0, 1.0));
    }
  }
  return e;
}

/// Applies a simple known rotation (Givens in dims 0-1, then 2-3, ...).
w2v::Embedding rotate(const w2v::Embedding& e, double angle) {
  w2v::Embedding out = e;
  const auto c = static_cast<float>(std::cos(angle));
  const auto s = static_cast<float>(std::sin(angle));
  for (std::size_t i = 0; i < e.size(); ++i) {
    auto v = out.vec(i);
    for (std::size_t d = 0; d + 1 < v.size(); d += 2) {
      const float x = v[d];
      const float y = v[d + 1];
      v[d] = c * x - s * y;
      v[d + 1] = s * x + c * y;
    }
  }
  return out;
}

TEST(Alignment, RecoversKnownRotation) {
  const std::size_t n = 120;
  const int dim = 8;
  const corpus::Corpus corpus = corpus_of(n);
  const w2v::Embedding source = random_embedding(n, dim, 5);
  const w2v::Embedding target = rotate(source, 0.7);

  const Alignment alignment =
      align_embeddings(corpus, source, corpus, target);
  EXPECT_EQ(alignment.anchors, n);
  EXPECT_GT(alignment.anchor_similarity, 0.999);

  const w2v::Embedding mapped =
      apply_alignment(alignment, source.normalized());
  const w2v::Embedding unit_target = target.normalized();
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_GT(w2v::cosine(mapped.vec(i), unit_target.vec(i)), 0.999) << i;
  }
}

TEST(Alignment, RotationIsOrthogonal) {
  const corpus::Corpus corpus = corpus_of(50);
  const w2v::Embedding source = random_embedding(50, 6, 7);
  const w2v::Embedding target = random_embedding(50, 6, 8);
  const Alignment a = align_embeddings(corpus, source, corpus, target);
  // R * R^T == I.
  const int dim = a.dim;
  for (int r = 0; r < dim; ++r) {
    for (int c = 0; c < dim; ++c) {
      double acc = 0;
      for (int k = 0; k < dim; ++k) {
        acc += a.rotation[static_cast<std::size_t>(r) * dim + k] *
               a.rotation[static_cast<std::size_t>(c) * dim + k];
      }
      EXPECT_NEAR(acc, r == c ? 1.0 : 0.0, 1e-8);
    }
  }
}

TEST(Alignment, PartialAnchorOverlap) {
  // Target shares only the first 40 senders with the source.
  const corpus::Corpus source_corpus = corpus_of(100);
  corpus::Corpus target_corpus;
  for (std::size_t i = 0; i < 40; ++i) {
    const net::IPv4 ip = source_corpus.words[i];
    target_corpus.ids.emplace(ip, static_cast<corpus::WordId>(i));
    target_corpus.words.push_back(ip);
  }
  const w2v::Embedding source = random_embedding(100, 8, 9);
  w2v::Embedding target(40, 8);
  const w2v::Embedding rotated = rotate(source, -0.4);
  for (std::size_t i = 0; i < 40; ++i) {
    std::ranges::copy(rotated.vec(i), target.vec(i).begin());
  }
  const Alignment a =
      align_embeddings(source_corpus, source, target_corpus, target);
  EXPECT_EQ(a.anchors, 40u);
  EXPECT_GT(a.anchor_similarity, 0.999);
}

TEST(Alignment, ErrorsOnBadInputs) {
  const corpus::Corpus c1 = corpus_of(10);
  corpus::Corpus c2;  // disjoint senders
  for (std::size_t i = 0; i < 10; ++i) {
    const net::IPv4 ip{99, 0, 0, static_cast<std::uint8_t>(i)};
    c2.ids.emplace(ip, static_cast<corpus::WordId>(i));
    c2.words.push_back(ip);
  }
  const w2v::Embedding e8 = random_embedding(10, 8, 1);
  const w2v::Embedding e4 = random_embedding(10, 4, 1);
  EXPECT_THROW(align_embeddings(c1, e8, c1, e4), darkvec::ContractViolation);
  EXPECT_THROW(align_embeddings(c1, e8, c2, e8), darkvec::ContractViolation);
}

TEST(Transfer, AlignmentRescuesTaskTransfer) {
  // Two halves of a simulated fortnight: embeddings trained separately,
  // target classified against source labels. Alignment must beat the raw
  // (arbitrarily rotated) spaces.
  sim::SimConfig config;
  config.days = 14;
  config.seed = 31;
  const sim::SimResult sim =
      sim::DarknetSimulator(config).run(sim::tiny_scenario());
  const std::int64_t mid = config.t0 + 7 * net::kSecondsPerDay;
  const net::Trace first = sim.trace.slice(config.t0, mid);
  const net::Trace second =
      sim.trace.slice(mid, config.t0 + 14 * net::kSecondsPerDay);

  DarkVecConfig dv_config;
  dv_config.w2v.dim = 24;
  dv_config.w2v.epochs = 8;
  dv_config.w2v.seed = 3;
  DarkVec dv1(dv_config);
  dv1.fit(first);
  dv_config.w2v.seed = 99;  // decorrelate the two latent spaces
  DarkVec dv2(dv_config);
  dv2.fit(second);

  const TransferResult r =
      evaluate_transfer(dv1.corpus(), dv1.embedding(), dv2.corpus(),
                        dv2.embedding(), sim.labels, 7);
  EXPECT_GT(r.alignment.anchors, 10u);
  // In the toy scenario most senders persist, so few non-anchor eval
  // points may exist; the anchors themselves must align well.
  EXPECT_GT(r.alignment.anchor_similarity, 0.3);
}

TEST(Transfer, ApplyAlignmentDimensionCheck) {
  Alignment a;
  a.dim = 4;
  a.rotation.assign(16, 0.0);
  const w2v::Embedding wrong(3, 5);
  EXPECT_THROW(apply_alignment(a, wrong), darkvec::ContractViolation);
}

}  // namespace
}  // namespace darkvec
