#include "darkvec/core/darkvec.hpp"

#include <gtest/gtest.h>

#include "darkvec/sim/scenario.hpp"
#include "darkvec/sim/simulator.hpp"

namespace darkvec {
namespace {

sim::SimResult tiny_sim(int days = 5, std::uint64_t seed = 11) {
  sim::SimConfig config;
  config.days = days;
  config.seed = seed;
  return sim::DarknetSimulator(config).run(sim::tiny_scenario());
}

DarkVecConfig fast_config() {
  DarkVecConfig c;
  c.w2v.dim = 16;
  c.w2v.epochs = 5;
  c.w2v.seed = 3;
  return c;
}

TEST(DarkVec, FitBuildsCorpusAndEmbedding) {
  const auto sim = tiny_sim();
  DarkVec dv(fast_config());
  const auto stats = dv.fit(sim.trace);
  EXPECT_GT(dv.corpus().vocabulary_size(), 50u);
  EXPECT_EQ(dv.embedding().size(), dv.corpus().vocabulary_size());
  EXPECT_EQ(dv.embedding().dim(), 16);
  EXPECT_GT(stats.pairs, 0u);
  EXPECT_GT(stats.tokens, 0u);
}

TEST(DarkVec, EmbeddingBeforeFitThrows) {
  DarkVec dv(fast_config());
  EXPECT_THROW((void)dv.embedding(), std::logic_error);
}

TEST(DarkVec, IndexOfMapsActiveSenders) {
  const auto sim = tiny_sim();
  DarkVec dv(fast_config());
  dv.fit(sim.trace);
  for (std::size_t i = 0; i < dv.corpus().words.size(); ++i) {
    const auto idx = dv.index_of(dv.corpus().words[i]);
    ASSERT_TRUE(idx.has_value());
    EXPECT_EQ(*idx, i);
  }
  EXPECT_FALSE(dv.index_of(net::IPv4{1, 1, 1, 1}).has_value());
}

TEST(DarkVec, ActivityFilterAppliesToEmbedding) {
  const auto sim = tiny_sim();
  DarkVecConfig config = fast_config();
  config.corpus.min_packets = 10;
  DarkVec dv(config);
  dv.fit(sim.trace);
  const auto totals = sim.trace.packets_per_sender();
  for (const net::IPv4 ip : dv.corpus().words) {
    EXPECT_GE(totals.at(ip), 10u);
  }
}

TEST(DarkVec, DeterministicEndToEnd) {
  const auto sim = tiny_sim();
  DarkVec dv1(fast_config());
  DarkVec dv2(fast_config());
  dv1.fit(sim.trace);
  dv2.fit(sim.trace);
  EXPECT_EQ(dv1.embedding().data(), dv2.embedding().data());
}

class ServiceStrategyFit
    : public ::testing::TestWithParam<corpus::ServiceStrategy> {};

TEST_P(ServiceStrategyFit, AllStrategiesTrainSuccessfully) {
  const auto sim = tiny_sim();
  DarkVecConfig config = fast_config();
  config.services = GetParam();
  DarkVec dv(config);
  const auto stats = dv.fit(sim.trace);
  EXPECT_GT(stats.pairs, 0u);
  EXPECT_GT(dv.corpus().vocabulary_size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Strategies, ServiceStrategyFit,
                         ::testing::Values(corpus::ServiceStrategy::kSingle,
                                           corpus::ServiceStrategy::kAuto,
                                           corpus::ServiceStrategy::kDomain));

TEST(DarkVec, ClusteringCoversAllWords) {
  const auto sim = tiny_sim();
  DarkVec dv(fast_config());
  dv.fit(sim.trace);
  const Clustering c = dv.cluster(3);
  EXPECT_EQ(c.assignment.size(), dv.corpus().vocabulary_size());
  EXPECT_GT(c.count, 1);
  EXPECT_GT(c.modularity, 0.0);
  for (const int a : c.assignment) {
    EXPECT_GE(a, 0);
    EXPECT_LT(a, c.count);
  }
}

TEST(DarkVec, RefitResetsState) {
  const auto sim1 = tiny_sim(5, 11);
  const auto sim2 = tiny_sim(3, 22);
  DarkVec dv(fast_config());
  dv.fit(sim1.trace);
  const std::size_t size1 = dv.corpus().vocabulary_size();
  dv.fit(sim2.trace);
  // New corpus replaces the old one and knn index is rebuilt lazily.
  EXPECT_NE(dv.corpus().vocabulary_size(), 0u);
  EXPECT_EQ(dv.knn().size(), dv.corpus().vocabulary_size());
  (void)size1;
}

TEST(DarkVec, LargerKPrimeMergesClusters) {
  const auto sim = tiny_sim();
  DarkVec dv(fast_config());
  dv.fit(sim.trace);
  const Clustering fine = dv.cluster(1);
  const Clustering coarse = dv.cluster(8);
  EXPECT_GE(fine.count, coarse.count);
}

}  // namespace
}  // namespace darkvec
