#include "fault_injection.hpp"

#include <algorithm>
#include <string>

#include "darkvec/core/errors.hpp"

namespace darkvec::test {
namespace {

// splitmix64: tiny, seedable, and good enough to scatter fault positions.
std::uint64_t next(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

std::string corrupt(std::string bytes, const FaultSpec& spec) {
  std::uint64_t state = spec.seed;
  if (bytes.size() > spec.protect_prefix) {
    const std::size_t span = bytes.size() - spec.protect_prefix;
    for (std::size_t i = 0; i < spec.bit_flips; ++i) {
      const std::size_t pos =
          spec.protect_prefix + static_cast<std::size_t>(next(state) % span);
      const int bit = static_cast<int>(next(state) % 8);
      bytes[pos] = static_cast<char>(
          static_cast<unsigned char>(bytes[pos]) ^ (1u << bit));
    }
  }
  if (spec.truncate_at) {
    bytes.resize(std::min(*spec.truncate_at, bytes.size()));
  }
  return bytes;
}

ShortReadBuf::ShortReadBuf(std::string bytes, std::size_t max_chunk)
    : bytes_(std::move(bytes)), max_chunk_(std::max<std::size_t>(1, max_chunk)) {}

ShortReadBuf::int_type ShortReadBuf::underflow() {
  if (pos_ >= bytes_.size()) return traits_type::eof();
  const std::size_t len = std::min(max_chunk_, bytes_.size() - pos_);
  char* base = bytes_.data() + pos_;
  setg(base, base, base + len);
  pos_ += len;
  return traits_type::to_int_type(*base);
}

FaultyStream::FaultyStream(std::string bytes, const FaultSpec& spec,
                           std::size_t max_chunk)
    : std::istream(nullptr), buf_(corrupt(std::move(bytes), spec), max_chunk) {
  rdbuf(&buf_);
}

void FlakyReads::step() {
  ++calls_;
  if (remaining_ <= 0) return;
  --remaining_;
  const std::string what =
      "flaky read (" + std::to_string(remaining_) + " failures left)";
  if (truncated_) throw io::TruncatedInput(what);
  throw io::IoError(what);
}

}  // namespace darkvec::test
