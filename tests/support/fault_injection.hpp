// Deterministic fault injection for reader robustness tests.
//
// corrupt() applies seeded bit-flips and/or truncation to a byte string;
// FaultyStream serves those bytes through a std::streambuf that refuses
// to buffer more than `max_chunk` bytes at a time, so readers see the
// short-read window patterns of pipes and network filesystems. Both are
// pure functions of (bytes, FaultSpec) — the same seed always produces
// the same damage, so every corruption-matrix failure reproduces.
#pragma once

#include <cstddef>
#include <cstdint>
#include <istream>
#include <optional>
#include <streambuf>
#include <string>

namespace darkvec::test {

/// What to do to a byte string. Defaults are "no damage".
struct FaultSpec {
  /// Seed of the deterministic position/bit picker.
  std::uint64_t seed = 1;
  /// Number of single-bit flips at seeded positions.
  std::size_t bit_flips = 0;
  /// Drop every byte from this offset on (applied after the flips;
  /// offsets past the end are clamped).
  std::optional<std::size_t> truncate_at;
  /// Never flip a bit inside the first N bytes (keeps a header intact
  /// when the test wants to reach deeper logic).
  std::size_t protect_prefix = 0;
};

/// Returns a damaged copy of `bytes` per `spec`.
[[nodiscard]] std::string corrupt(std::string bytes, const FaultSpec& spec);

/// streambuf over an in-memory byte string that exposes at most
/// `max_chunk` bytes per underflow.
class ShortReadBuf : public std::streambuf {
 public:
  ShortReadBuf(std::string bytes, std::size_t max_chunk);

 protected:
  int_type underflow() override;

 private:
  std::string bytes_;
  std::size_t pos_ = 0;
  std::size_t max_chunk_;
};

/// An istream over corrupted bytes with short reads. Usage:
///   FaultyStream in(golden_bytes, {.seed = 7, .bit_flips = 3}, 13);
///   auto trace = net::read_binary(in, policy, &report);
class FaultyStream : public std::istream {
 public:
  explicit FaultyStream(std::string bytes, const FaultSpec& spec = {},
                        std::size_t max_chunk = 4096);

 private:
  ShortReadBuf buf_;
};

/// Flaky-read mode for io::with_retry tests: fails its first `failures`
/// step() calls with a *transient* error (plain io::IoError, or
/// io::TruncatedInput when `truncated`), then passes forever. Call
/// step() at the top of the operation under retry:
///   test::FlakyReads flaky(2);
///   auto v = io::with_retry(policy, [&] { flaky.step(); return read(); });
///   EXPECT_EQ(flaky.calls(), 3);
class FlakyReads {
 public:
  explicit FlakyReads(int failures, bool truncated = false)
      : remaining_(failures), truncated_(truncated) {}

  /// Throws while failures remain; otherwise returns. Every call counts.
  void step();

  /// Total step() calls so far (== attempts the caller made).
  [[nodiscard]] int calls() const { return calls_; }
  /// Failures not yet delivered.
  [[nodiscard]] int remaining() const { return remaining_; }

 private:
  int remaining_;
  bool truncated_;
  int calls_ = 0;
};

}  // namespace darkvec::test
