#include "darkvec/baselines/port_features.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace darkvec::baselines {
namespace {

using net::IPv4;
using net::Packet;
using net::PortKey;
using net::Protocol;

const IPv4 kBot{10, 1, 0, 1};
const IPv4 kScan{10, 2, 0, 1};
const IPv4 kNoise{10, 3, 0, 1};

Packet pkt(std::int64_t ts, IPv4 src, std::uint16_t port) {
  Packet p;
  p.ts = ts;
  p.src = src;
  p.dst_port = port;
  return p;
}

net::Trace labeled_trace() {
  net::Trace t;
  // Botnet: 23 (x3), 2323 (x1). Scanner: 80 (x2), 443 (x2). Noise: 9999.
  t.push_back(pkt(1, kBot, 23));
  t.push_back(pkt(2, kBot, 23));
  t.push_back(pkt(3, kBot, 23));
  t.push_back(pkt(4, kBot, 2323));
  t.push_back(pkt(5, kScan, 80));
  t.push_back(pkt(6, kScan, 443));
  t.push_back(pkt(7, kScan, 80));
  t.push_back(pkt(8, kScan, 443));
  t.push_back(pkt(9, kNoise, 9999));
  t.sort();
  return t;
}

sim::LabelMap labels() {
  return {{kBot, sim::GtClass::kMirai}, {kScan, sim::GtClass::kCensys}};
}

TEST(PortFeatures, ColumnsAreUnionOfPerClassTopPorts) {
  const std::vector<IPv4> senders = {kBot, kScan, kNoise};
  const PortFeatures f = build_port_features(labeled_trace(), senders,
                                             labels(), 5);
  // All five distinct ports qualify (each class has <= 5 ports).
  EXPECT_EQ(f.ports.size(), 5u);
  EXPECT_TRUE(std::ranges::is_sorted(f.ports));
  EXPECT_TRUE(std::ranges::find(f.ports, PortKey{23, Protocol::kTcp}) !=
              f.ports.end());
  EXPECT_TRUE(std::ranges::find(f.ports, PortKey{9999, Protocol::kTcp}) !=
              f.ports.end());  // Unknown class contributes its ports too
}

TEST(PortFeatures, TopPortsPerClassCapRespected) {
  net::Trace t;
  // One class sender spreading over 8 ports, weights descending.
  for (std::uint16_t p = 1; p <= 8; ++p) {
    for (int i = 0; i <= 8 - p; ++i) {
      t.push_back(pkt(p * 100 + i, kBot, p));
    }
  }
  t.sort();
  const std::vector<IPv4> senders = {kBot};
  const PortFeatures f = build_port_features(
      t, senders, {{kBot, sim::GtClass::kMirai}}, 3);
  EXPECT_EQ(f.ports.size(), 3u);
  // The three busiest ports are 1, 2, 3.
  for (const PortKey& k : f.ports) EXPECT_LE(k.port, 3);
}

TEST(PortFeatures, RowsAreTrafficFractions) {
  const std::vector<IPv4> senders = {kBot, kScan, kNoise};
  const PortFeatures f = build_port_features(labeled_trace(), senders,
                                             labels(), 5);
  const auto col = [&](PortKey key) {
    return static_cast<std::size_t>(
        std::distance(f.ports.begin(), std::ranges::find(f.ports, key)));
  };
  const auto row_bot = f.matrix.vec(0);
  EXPECT_FLOAT_EQ(row_bot[col(PortKey{23, Protocol::kTcp})], 0.75f);
  EXPECT_FLOAT_EQ(row_bot[col(PortKey{2323, Protocol::kTcp})], 0.25f);
  const auto row_scan = f.matrix.vec(1);
  EXPECT_FLOAT_EQ(row_scan[col(PortKey{80, Protocol::kTcp})], 0.5f);
  EXPECT_FLOAT_EQ(row_scan[col(PortKey{443, Protocol::kTcp})], 0.5f);
}

TEST(PortFeatures, RowSumsAtMostOne) {
  const std::vector<IPv4> senders = {kBot, kScan, kNoise};
  const PortFeatures f = build_port_features(labeled_trace(), senders,
                                             labels(), 1);
  for (std::size_t r = 0; r < senders.size(); ++r) {
    float sum = 0;
    for (const float v : f.matrix.vec(r)) sum += v;
    EXPECT_LE(sum, 1.0f + 1e-6f);
  }
}

TEST(PortFeatures, SendersOutsideListIgnored) {
  const std::vector<IPv4> senders = {kBot};
  const PortFeatures f = build_port_features(labeled_trace(), senders,
                                             labels(), 5);
  EXPECT_EQ(f.senders.size(), 1u);
  EXPECT_EQ(f.matrix.size(), 1u);
  // Scanner ports never observed among requested senders.
  EXPECT_TRUE(std::ranges::find(f.ports, PortKey{80, Protocol::kTcp}) ==
              f.ports.end());
}

TEST(PortFeatures, SenderWithNoPacketsGetsZeroRow) {
  const IPv4 ghost{99, 99, 99, 99};
  const std::vector<IPv4> senders = {kBot, ghost};
  const PortFeatures f = build_port_features(labeled_trace(), senders,
                                             labels(), 5);
  for (const float v : f.matrix.vec(1)) EXPECT_EQ(v, 0.0f);
}

TEST(PortFeatures, EmptyTrace) {
  const std::vector<IPv4> senders = {kBot};
  const PortFeatures f =
      build_port_features(net::Trace{}, senders, labels(), 5);
  EXPECT_EQ(f.ports.size(), 0u);
  EXPECT_EQ(f.senders.size(), 1u);
}

}  // namespace
}  // namespace darkvec::baselines
