#include "darkvec/baselines/ip2vec.hpp"

#include <gtest/gtest.h>

#include "darkvec/net/time.hpp"
#include "darkvec/w2v/embedding.hpp"

namespace darkvec::baselines {
namespace {

using net::IPv4;
using net::Packet;
using net::Protocol;

Packet pkt(std::int64_t offset, IPv4 src, std::uint16_t port,
           std::uint8_t dst_host = 1, Protocol proto = Protocol::kTcp) {
  Packet p;
  p.ts = net::kTraceEpoch + offset;
  p.src = src;
  p.dst_host = dst_host;
  p.dst_port = port;
  p.proto = proto;
  return p;
}

const IPv4 kA{10, 0, 0, 1};
const IPv4 kB{10, 0, 0, 2};
const IPv4 kC{10, 0, 0, 3};

Ip2VecOptions fast_options() {
  Ip2VecOptions o;
  o.w2v.dim = 8;
  o.w2v.epochs = 5;
  o.w2v.subsample = 0;
  return o;
}

TEST(Ip2Vec, FivePairsPerFlow) {
  net::Trace t;
  t.push_back(pkt(10, kA, 22));
  t.sort();
  const std::vector<IPv4> senders = {kA};
  const Ip2VecResult r = run_ip2vec(t, senders, fast_options());
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.flows, 1u);
  EXPECT_EQ(r.pairs_per_epoch, 5u);
}

TEST(Ip2Vec, RepeatedPacketsCollapseIntoOneFlow) {
  net::Trace t;
  // Same 5-tuple within the flow window: one flow.
  for (int i = 0; i < 10; ++i) t.push_back(pkt(10 + i, kA, 22));
  t.sort();
  const std::vector<IPv4> senders = {kA};
  const Ip2VecResult r = run_ip2vec(t, senders, fast_options());
  EXPECT_EQ(r.flows, 1u);
}

TEST(Ip2Vec, NewWindowReopensFlow) {
  net::Trace t;
  t.push_back(pkt(10, kA, 22));
  t.push_back(pkt(10 + 10 * 60 + 5, kA, 22));  // past the 10-min window
  t.sort();
  const std::vector<IPv4> senders = {kA};
  const Ip2VecResult r = run_ip2vec(t, senders, fast_options());
  EXPECT_EQ(r.flows, 2u);
}

TEST(Ip2Vec, DistinctTuplesAreDistinctFlows) {
  net::Trace t;
  t.push_back(pkt(10, kA, 22));
  t.push_back(pkt(11, kA, 23));                      // different port
  t.push_back(pkt(12, kA, 22, 2));                   // different dst
  t.push_back(pkt(13, kA, 22, 1, Protocol::kUdp));   // different proto
  t.sort();
  const std::vector<IPv4> senders = {kA};
  const Ip2VecResult r = run_ip2vec(t, senders, fast_options());
  EXPECT_EQ(r.flows, 4u);
  EXPECT_EQ(r.pairs_per_epoch, 20u);
}

TEST(Ip2Vec, PairBudgetTriggersDnf) {
  net::Trace t;
  for (int i = 0; i < 50; ++i) {
    t.push_back(pkt(10 + i, kA, static_cast<std::uint16_t>(1000 + i)));
  }
  t.sort();
  Ip2VecOptions o = fast_options();
  o.max_pairs_per_epoch = 20;
  const std::vector<IPv4> senders = {kA};
  const Ip2VecResult r = run_ip2vec(t, senders, o);
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.sender_vectors.size(), 0u);
}

TEST(Ip2Vec, SenderVectorsCoverRequestedSenders) {
  net::Trace t;
  t.push_back(pkt(10, kA, 22));
  t.push_back(pkt(20, kB, 23));
  t.push_back(pkt(30, kC, 445));
  t.sort();
  const std::vector<IPv4> senders = {kA, kB};  // kC not requested
  const Ip2VecResult r = run_ip2vec(t, senders, fast_options());
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.senders.size(), 2u);
  EXPECT_EQ(r.sender_vectors.size(), 2u);
  EXPECT_EQ(r.sender_vectors.dim(), 8);
}

TEST(Ip2Vec, SharedFlowStructureYieldsSimilarSenders) {
  net::Trace t;
  // kA and kB target the same (port, dst) mix; kC a disjoint one. Spread
  // flows over many windows so each pair repeats.
  for (int w = 0; w < 150; ++w) {
    const auto base = static_cast<std::int64_t>(w) * 11 * 60;
    t.push_back(pkt(base + 0, kA, 23, 1));
    t.push_back(pkt(base + 1, kB, 23, 1));
    t.push_back(pkt(base + 2, kA, 2323, 2));
    t.push_back(pkt(base + 3, kB, 2323, 2));
    t.push_back(pkt(base + 4, kC, 443, 3));
    t.push_back(pkt(base + 5, kC, 80, 4));
  }
  t.sort();
  const std::vector<IPv4> senders = {kA, kB, kC};
  Ip2VecOptions o = fast_options();
  o.w2v.epochs = 10;
  const Ip2VecResult r = run_ip2vec(t, senders, o);
  ASSERT_TRUE(r.completed);
  const double ab = r.sender_vectors.cosine(0, 1);
  const double ac = r.sender_vectors.cosine(0, 2);
  EXPECT_GT(ab, ac + 0.2);
}

TEST(Ip2Vec, EmptyInputs) {
  const std::vector<IPv4> senders = {kA};
  EXPECT_FALSE(run_ip2vec(net::Trace{}, senders, fast_options()).completed);
  net::Trace t;
  t.push_back(pkt(1, kA, 23));
  EXPECT_FALSE(run_ip2vec(t, {}, fast_options()).completed);
}

}  // namespace
}  // namespace darkvec::baselines
