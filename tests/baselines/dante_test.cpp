#include "darkvec/baselines/dante.hpp"

#include <gtest/gtest.h>

#include "darkvec/net/time.hpp"
#include "darkvec/w2v/embedding.hpp"

namespace darkvec::baselines {
namespace {

using net::IPv4;
using net::Packet;
using net::Protocol;

Packet pkt(std::int64_t offset, IPv4 src, std::uint16_t port) {
  Packet p;
  p.ts = net::kTraceEpoch + offset;
  p.src = src;
  p.dst_port = port;
  return p;
}

const IPv4 kA{10, 0, 0, 1};
const IPv4 kB{10, 0, 0, 2};
const IPv4 kC{10, 0, 0, 3};

DanteOptions fast_options() {
  DanteOptions o;
  o.w2v.dim = 8;
  o.w2v.epochs = 5;
  o.w2v.subsample = 0;
  return o;
}

TEST(Dante, SentencesSplitBySenderAndWindow) {
  net::Trace t;
  // kA: 3 packets in window 0, 2 in window 1. kB: 2 in window 0.
  t.push_back(pkt(10, kA, 23));
  t.push_back(pkt(20, kA, 80));
  t.push_back(pkt(30, kA, 23));
  t.push_back(pkt(40, kB, 443));
  t.push_back(pkt(50, kB, 443));
  t.push_back(pkt(3 * 3600 + 10, kA, 23));
  t.push_back(pkt(3 * 3600 + 20, kA, 80));
  t.sort();
  const std::vector<IPv4> senders = {kA, kB};
  const DanteResult r = run_dante(t, senders, fast_options());
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.sentences, 3u);  // (kA,w0), (kB,w0), (kA,w1)
  EXPECT_EQ(r.senders.size(), 2u);
}

TEST(Dante, SkipgramCountMatchesHandComputation) {
  net::Trace t;
  // One sender, one window, 3 ports; DANTE window c=5 covers the whole
  // sentence: 3*2 = 6 ordered pairs.
  t.push_back(pkt(10, kA, 1));
  t.push_back(pkt(20, kA, 2));
  t.push_back(pkt(30, kA, 3));
  t.sort();
  const std::vector<IPv4> senders = {kA};
  const DanteResult r = run_dante(t, senders, fast_options());
  EXPECT_EQ(r.skipgrams_per_epoch, 6u);
}

TEST(Dante, PairBudgetTriggersDnf) {
  net::Trace t;
  for (int i = 0; i < 100; ++i) {
    t.push_back(pkt(10 + i, kA, static_cast<std::uint16_t>(i % 7)));
  }
  t.sort();
  DanteOptions o = fast_options();
  o.max_pairs_per_epoch = 10;  // far below the real count
  const std::vector<IPv4> senders = {kA};
  const DanteResult r = run_dante(t, senders, o);
  EXPECT_FALSE(r.completed);
  EXPECT_GT(r.skipgrams_per_epoch, 10u);
  EXPECT_EQ(r.sender_vectors.size(), 0u);
  EXPECT_EQ(r.train_seconds, 0.0);
}

TEST(Dante, SimilarPortSequencesYieldSimilarSenders) {
  net::Trace t;
  // kA and kB both alternate ports {23, 2323}; kC uses {80, 443}.
  for (int i = 0; i < 120; ++i) {
    const auto offset = static_cast<std::int64_t>(i * 60);
    t.push_back(pkt(offset, kA, i % 2 == 0 ? 23 : 2323));
    t.push_back(pkt(offset + 1, kB, i % 2 == 0 ? 2323 : 23));
    t.push_back(pkt(offset + 2, kC, i % 2 == 0 ? 80 : 443));
  }
  t.sort();
  const std::vector<IPv4> senders = {kA, kB, kC};
  DanteOptions o = fast_options();
  o.w2v.epochs = 20;
  const DanteResult r = run_dante(t, senders, o);
  ASSERT_TRUE(r.completed);
  ASSERT_EQ(r.sender_vectors.size(), 3u);
  const double ab = r.sender_vectors.cosine(0, 1);
  const double ac = r.sender_vectors.cosine(0, 2);
  EXPECT_GT(ab, ac + 0.2);
}

TEST(Dante, IgnoresSendersOutsideList) {
  net::Trace t;
  t.push_back(pkt(10, kA, 23));
  t.push_back(pkt(20, kA, 23));
  t.push_back(pkt(30, kB, 23));
  t.sort();
  const std::vector<IPv4> senders = {kA};
  const DanteResult r = run_dante(t, senders, fast_options());
  EXPECT_EQ(r.senders.size(), 1u);
  EXPECT_EQ(r.senders[0], kA);
}

TEST(Dante, EmptyInputs) {
  const std::vector<IPv4> senders = {kA};
  EXPECT_FALSE(run_dante(net::Trace{}, senders, fast_options()).completed);
  net::Trace t;
  t.push_back(pkt(1, kA, 23));
  EXPECT_FALSE(run_dante(t, {}, fast_options()).completed);
}

TEST(Dante, SenderVectorRowsAlignWithSenders) {
  net::Trace t;
  t.push_back(pkt(10, kB, 23));
  t.push_back(pkt(20, kB, 23));
  t.push_back(pkt(30, kA, 80));
  t.push_back(pkt(40, kA, 80));
  t.sort();
  const std::vector<IPv4> senders = {kA, kB};
  const DanteResult r = run_dante(t, senders, fast_options());
  ASSERT_TRUE(r.completed);
  // Row order follows first appearance in the trace: kB first.
  ASSERT_EQ(r.senders.size(), 2u);
  EXPECT_EQ(r.senders[0], kB);
  EXPECT_EQ(r.senders[1], kA);
  EXPECT_EQ(r.sender_vectors.size(), 2u);
}

}  // namespace
}  // namespace darkvec::baselines
