// Cross-module invariants: properties that tie two subsystems together and
// would break silently if either side drifted.
#include <gtest/gtest.h>

#include "darkvec/core/darkvec.hpp"
#include "darkvec/core/inspector.hpp"
#include "darkvec/core/semi_supervised.hpp"
#include "darkvec/ml/silhouette.hpp"
#include "darkvec/sim/scenario.hpp"
#include "darkvec/sim/simulator.hpp"

namespace darkvec {
namespace {

sim::SimResult tiny_sim() {
  sim::SimConfig config;
  config.days = 5;
  config.seed = 77;
  return sim::DarknetSimulator(config).run(sim::tiny_scenario());
}

TEST(CrossModule, TrainerPairsMatchCountSkipgrams) {
  // With a fixed (non-dynamic) window and no subsampling, the trainer must
  // process exactly the pairs count_skipgrams predicts, per epoch.
  const auto sim = tiny_sim();
  DarkVecConfig config;
  config.w2v.dim = 8;
  config.w2v.window = 4;
  config.w2v.epochs = 2;
  config.w2v.dynamic_window = false;
  config.w2v.subsample = 0;
  DarkVec dv(config);
  const auto stats = dv.fit(sim.trace);
  const std::uint64_t per_epoch = corpus::count_skipgrams(dv.corpus(), 4);
  EXPECT_EQ(stats.pairs, 2 * per_epoch);
}

TEST(CrossModule, CorpusTokensMatchActiveSenderPackets) {
  // Every packet of an active sender lands in a sentence, except packets
  // stranded alone in their (service, window) cell.
  const auto sim = tiny_sim();
  DarkVecConfig config;
  config.w2v.dim = 8;
  config.w2v.epochs = 1;
  DarkVec dv(config);
  dv.fit(sim.trace);

  std::size_t active_packets = 0;
  const auto totals = sim.trace.packets_per_sender();
  for (const auto& [ip, n] : totals) {
    if (n >= config.corpus.min_packets) active_packets += n;
  }
  EXPECT_LE(dv.corpus().tokens(), active_packets);
  // Dropped singleton sentences are a small fraction.
  EXPECT_GT(dv.corpus().tokens(), active_packets * 9 / 10);
}

TEST(CrossModule, CoverageEqualsEvalIntersection) {
  const auto sim = tiny_sim();
  DarkVecConfig config;
  config.w2v.dim = 8;
  config.w2v.epochs = 1;
  DarkVec dv(config);
  dv.fit(sim.trace);
  const auto eval_ips = last_day_active_senders(sim.trace);
  const auto eval = evaluate_knn(dv, sim.labels, eval_ips, 3);
  std::size_t expected = 0;
  for (const net::IPv4 ip : eval_ips) {
    if (dv.index_of(ip)) ++expected;
  }
  EXPECT_EQ(eval.covered, expected);
  EXPECT_EQ(eval.total, eval_ips.size());
}

TEST(CrossModule, ClusteringInspectionConsistency) {
  const auto sim = tiny_sim();
  DarkVecConfig config;
  config.w2v.dim = 16;
  config.w2v.epochs = 3;
  DarkVec dv(config);
  dv.fit(sim.trace);
  const Clustering clustering = dv.cluster(3);
  const auto samples =
      ml::silhouette_samples(dv.embedding(), clustering.assignment);
  const auto clusters = inspect_clusters(sim.trace, dv.corpus(),
                                         clustering.assignment, sim.groups,
                                         samples);
  // Every embedded sender appears in exactly one cluster.
  std::size_t total_members = 0;
  for (const ClusterInfo& c : clusters) total_members += c.size();
  EXPECT_EQ(total_members, dv.corpus().vocabulary_size());

  // Inspector silhouette means agree with silhouette_by_cluster.
  const auto by_cluster =
      ml::silhouette_by_cluster(samples, clustering.assignment);
  for (const ClusterInfo& c : clusters) {
    EXPECT_NEAR(c.silhouette, by_cluster[static_cast<std::size_t>(c.id)],
                1e-9);
  }

  // Group composition counts sum to the cluster size.
  for (const ClusterInfo& c : clusters) {
    std::size_t composed = 0;
    for (const auto& [group, n] : c.group_composition) composed += n;
    EXPECT_EQ(composed, c.size());
  }
}

TEST(CrossModule, ExtensionCandidatesAreEmbedded) {
  const auto sim = tiny_sim();
  DarkVecConfig config;
  config.w2v.dim = 16;
  config.w2v.epochs = 3;
  DarkVec dv(config);
  dv.fit(sim.trace);
  for (const auto& cand : extend_ground_truth(dv, sim.labels, 5)) {
    EXPECT_TRUE(dv.index_of(cand.ip).has_value());
  }
}

}  // namespace
}  // namespace darkvec
