// End-to-end integration tests: simulator -> corpus -> embedding ->
// semi-supervised k-NN and unsupervised Louvain, on the toy scenario and a
// scaled-down paper scenario. These assert the *shape* of the paper's
// results, not exact numbers.
#include <gtest/gtest.h>

#include <unordered_map>

#include "darkvec/core/darkvec.hpp"
#include "darkvec/core/inspector.hpp"
#include "darkvec/core/semi_supervised.hpp"
#include "darkvec/sim/scenario.hpp"
#include "darkvec/sim/simulator.hpp"

namespace darkvec {
namespace {

class TinyPipeline : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::SimConfig config;
    config.days = 7;
    config.seed = 42;
    sim_ = new sim::SimResult(
        sim::DarknetSimulator(config).run(sim::tiny_scenario()));
    DarkVecConfig dv_config;
    dv_config.w2v.dim = 32;
    dv_config.w2v.epochs = 10;
    dv_config.w2v.seed = 7;
    dv_ = new DarkVec(dv_config);
    dv_->fit(sim_->trace);
  }
  static void TearDownTestSuite() {
    delete dv_;
    delete sim_;
    dv_ = nullptr;
    sim_ = nullptr;
  }

  static sim::SimResult* sim_;
  static DarkVec* dv_;
};

sim::SimResult* TinyPipeline::sim_ = nullptr;
DarkVec* TinyPipeline::dv_ = nullptr;

TEST_F(TinyPipeline, SemiSupervisedAccuracyIsHigh) {
  const auto eval_ips = last_day_active_senders(sim_->trace);
  const auto eval = evaluate_knn(*dv_, sim_->labels, eval_ips, 7);
  EXPECT_GT(eval.accuracy, 0.95);
}

TEST_F(TinyPipeline, BotnetNeighboursAreBotnets) {
  // For every botnet member, most of its 5 nearest neighbours share the
  // label — the property Figure 4's semi-supervised path relies on.
  std::size_t checked = 0;
  std::size_t good = 0;
  for (std::size_t i = 0; i < dv_->corpus().words.size(); ++i) {
    if (sim::label_of(sim_->labels, dv_->corpus().words[i]) !=
        sim::GtClass::kMirai) {
      continue;
    }
    ++checked;
    std::size_t same = 0;
    for (const auto& nb : dv_->knn().query(i, 5)) {
      if (sim::label_of(sim_->labels, dv_->corpus().words[nb.index]) ==
          sim::GtClass::kMirai) {
        ++same;
      }
    }
    if (same >= 3) ++good;
  }
  ASSERT_GT(checked, 0u);
  EXPECT_GT(static_cast<double>(good) / static_cast<double>(checked), 0.9);
}

TEST_F(TinyPipeline, ClusteringSeparatesThePopulations) {
  const Clustering clustering = dv_->cluster(3);
  const auto clusters = inspect_clusters(
      sim_->trace, dv_->corpus(), clustering.assignment, sim_->groups);
  // The two coordinated populations each dominate some cluster.
  bool botnet_cluster = false;
  bool scanner_cluster = false;
  for (const ClusterInfo& cl : clusters) {
    if (cl.size() < 5) continue;
    if (cl.dominant_group == "toy_botnet" && cl.dominant_fraction > 0.8) {
      botnet_cluster = true;
    }
    if (cl.dominant_group == "toy_scanner" && cl.dominant_fraction > 0.8) {
      scanner_cluster = true;
    }
  }
  EXPECT_TRUE(botnet_cluster);
  EXPECT_TRUE(scanner_cluster);
  EXPECT_GT(clustering.modularity, 0.5);
}

TEST_F(TinyPipeline, FullPipelineIsDeterministic) {
  DarkVecConfig config;
  config.w2v.dim = 32;
  config.w2v.epochs = 10;
  config.w2v.seed = 7;
  DarkVec other(config);
  other.fit(sim_->trace);
  EXPECT_EQ(other.embedding().data(), dv_->embedding().data());
  const Clustering c1 = dv_->cluster(3, 1);
  const Clustering c2 = other.cluster(3, 1);
  EXPECT_EQ(c1.assignment, c2.assignment);
}

// ---- scaled-down paper scenario ------------------------------------------

class PaperPipeline : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::SimConfig config;
    config.days = 10;
    config.seed = 2021;
    config.scale = 0.25;  // keep the integration test under ~20 s
    sim_ = new sim::SimResult(
        sim::DarknetSimulator(config).run(sim::paper_scenario()));
    DarkVecConfig dv_config;
    dv_config.w2v.epochs = 5;
    dv_ = new DarkVec(dv_config);
    dv_->fit(sim_->trace);
  }
  static void TearDownTestSuite() {
    delete dv_;
    delete sim_;
    dv_ = nullptr;
    sim_ = nullptr;
  }

  static sim::SimResult* sim_;
  static DarkVec* dv_;
};

sim::SimResult* PaperPipeline::sim_ = nullptr;
DarkVec* PaperPipeline::dv_ = nullptr;

TEST_F(PaperPipeline, AccuracyInPaperBand) {
  const auto eval_ips = last_day_active_senders(sim_->trace);
  const auto eval = evaluate_knn(*dv_, sim_->labels, eval_ips, 7);
  // The paper reports 0.93-0.96 for 5-30 day windows; a reduced-scale
  // (0.25x, 5-epoch) 10-day run lands a bit lower but must clear 0.80.
  // The bench binaries exercise the full-scale configuration.
  EXPECT_GT(eval.accuracy, 0.80);
}

TEST_F(PaperPipeline, StretchoidIsTheWeakClass) {
  const auto eval_ips = last_day_active_senders(sim_->trace);
  const auto eval = evaluate_knn(*dv_, sim_->labels, eval_ips, 7);
  const auto& stretchoid =
      eval.report.scores(static_cast<int>(sim::GtClass::kStretchoid));
  const auto& census = eval.report.scores(
      static_cast<int>(sim::GtClass::kInternetCensus));
  // Sparse irregular senders embed poorly (Table 4: recall 0.35 domain).
  EXPECT_LT(stretchoid.recall, 0.7);
  EXPECT_GT(census.recall, stretchoid.recall);
}

TEST_F(PaperPipeline, UnsupervisedFindsCoordinatedUnknownGroups) {
  const Clustering clustering = dv_->cluster(3);
  const auto clusters = inspect_clusters(
      sim_->trace, dv_->corpus(), clustering.assignment, sim_->groups);
  std::unordered_map<std::string, double> best_purity;
  for (const ClusterInfo& cl : clusters) {
    if (cl.size() < 5) continue;
    auto& best = best_purity[cl.dominant_group];
    best = std::max(best, cl.dominant_fraction);
  }
  // The Table 5 groups must each dominate some cluster.
  for (const char* group :
       {"unknown1_netbios", "unknown3_smb", "unknown6_ssh"}) {
    EXPECT_GT(best_purity[group], 0.8) << group;
  }
  EXPECT_GT(clustering.modularity, 0.6);
}

TEST_F(PaperPipeline, EmbeddingCoversOnlyActiveSenders) {
  const auto totals = sim_->trace.packets_per_sender();
  for (const net::IPv4 ip : dv_->corpus().words) {
    EXPECT_GE(totals.at(ip), 10u);
  }
  // And far fewer words than raw senders (the backscatter mass filtered).
  EXPECT_LT(dv_->corpus().vocabulary_size(), totals.size() / 2);
}

}  // namespace
}  // namespace darkvec
