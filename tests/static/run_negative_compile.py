#!/usr/bin/env python3
"""Negative-compile harness for the thread-safety annotations.

Proves the DV_GUARDED_BY machinery actually bites: compiles
negative/guarded_write.cpp (must succeed) and negative/unguarded_write.cpp
(must FAIL) under `clang++ -fsyntax-only -Wthread-safety
-Werror=thread-safety-analysis`.

Exit codes: 0 both expectations hold, 1 either is violated, 127 no
clang++ on PATH (CTest treats 127 as SKIP via SKIP_RETURN_CODE — the
analysis is Clang-only and the toolchain may be GCC-only).
"""

from __future__ import annotations

import argparse
import pathlib
import shutil
import subprocess
import sys

SKIP = 127


def compile_probe(clangxx: str, include_dir: pathlib.Path,
                  source: pathlib.Path) -> subprocess.CompletedProcess:
    return subprocess.run(
        [
            clangxx, "-std=c++20", "-fsyntax-only",
            "-I", str(include_dir),
            "-Wthread-safety", "-Werror=thread-safety-analysis",
            str(source),
        ],
        capture_output=True,
        text=True,
        check=False,
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--include-dir", required=True,
                        help="repo include/ directory")
    parser.add_argument("--negative-dir", required=True,
                        help="directory holding the probe .cpp files")
    args = parser.parse_args()

    clangxx = shutil.which("clang++")
    if clangxx is None:
        print("SKIP: clang++ not found; thread-safety analysis is Clang-only")
        return SKIP

    include_dir = pathlib.Path(args.include_dir)
    negative_dir = pathlib.Path(args.negative_dir)

    control = compile_probe(clangxx, include_dir,
                            negative_dir / "guarded_write.cpp")
    if control.returncode != 0:
        print("FAIL: guarded_write.cpp (the control) did not compile; the "
              "annotations header is broken:")
        print(control.stderr)
        return 1

    probe = compile_probe(clangxx, include_dir,
                          negative_dir / "unguarded_write.cpp")
    if probe.returncode == 0:
        print("FAIL: unguarded_write.cpp compiled; the thread-safety "
              "analysis did not reject an unguarded write to a "
              "DV_GUARDED_BY field")
        return 1
    if "-Wthread-safety" not in probe.stderr and \
            "thread-safety" not in probe.stderr:
        print("FAIL: unguarded_write.cpp failed for a reason other than "
              "thread-safety analysis:")
        print(probe.stderr)
        return 1

    print("OK: control compiles, unguarded write rejected by "
          "-Wthread-safety")
    return 0


if __name__ == "__main__":
    sys.exit(main())
