// Contract behavior in the default (throw) mode. The mode is forced
// per-TU so this suite is meaningful regardless of the build-wide
// -DDARKVEC_CONTRACTS setting.
#undef DARKVEC_CONTRACTS_OFF
#undef DARKVEC_CONTRACTS_TRAP
#include "darkvec/core/contracts.hpp"

#include <gtest/gtest.h>

#include <string>

namespace {

using darkvec::ContractViolation;

int checked_halve(int n) {
  DV_PRECONDITION(n % 2 == 0, "checked_halve: n must be even");
  const int half = n / 2;
  DV_POSTCONDITION(half * 2 == n, "checked_halve: result reconstructs n");
  return half;
}

TEST(ContractsThrow, SatisfiedContractsAreSilent) {
  EXPECT_EQ(checked_halve(8), 4);
}

TEST(ContractsThrow, PreconditionThrowsContractViolation) {
  EXPECT_THROW(checked_halve(7), ContractViolation);
  // ContractViolation is a logic_error: existing catch sites keep working.
  EXPECT_THROW(checked_halve(7), std::logic_error);
}

TEST(ContractsThrow, MessageNamesKindExpressionInvariantAndSite) {
  try {
    checked_halve(7);
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("precondition violated"), std::string::npos) << what;
    EXPECT_NE(what.find("n % 2 == 0"), std::string::npos) << what;
    EXPECT_NE(what.find("checked_halve: n must be even"), std::string::npos)
        << what;
    EXPECT_NE(what.find("contracts_throw_test.cpp"), std::string::npos)
        << what;
    EXPECT_EQ(e.kind(), ContractViolation::Kind::kPrecondition);
  }
}

TEST(ContractsThrow, EachMacroReportsItsKind) {
  try {
    DV_POSTCONDITION(false, "kind probe");
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    EXPECT_EQ(e.kind(), ContractViolation::Kind::kPostcondition);
    EXPECT_NE(std::string(e.what()).find("postcondition violated"),
              std::string::npos);
  }
  try {
    DV_INVARIANT(false, "kind probe");
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    EXPECT_EQ(e.kind(), ContractViolation::Kind::kInvariant);
    EXPECT_NE(std::string(e.what()).find("invariant violated"),
              std::string::npos);
  }
}

TEST(ContractsThrow, ConditionEvaluatedExactlyOnce) {
  int calls = 0;
  DV_PRECONDITION(++calls > 0, "single evaluation");
  EXPECT_EQ(calls, 1);
}

}  // namespace
