#!/usr/bin/env python3
"""Golden-findings regression for dvanalyze.

Three phases over the committed corpus (known-bad sources, one per
rule, plus a clean twin):

  1. scan the corpus and require the findings to match expected.txt
     exactly — path, line and rule; extras and omissions both fail
  2. baseline round-trip: write the corpus findings as a baseline into
     a temp dir, re-scan against it, and require a green exit (the
     burn-down gating mechanism)
  3. stale detection: add a fabricated entry to that baseline and
     require the scan to fail with a stale-baseline diagnostic

Exit 0 on success, 1 on any mismatch.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import subprocess
import sys
import tempfile

FINDING_RE = r"^(?P<path>[\w/.\-]+):(?P<line>\d+): \[(?P<rule>[a-z\-]+)\]"


def scan(tools_dir: pathlib.Path, corpus: pathlib.Path,
         extra: list[str]) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(tools_dir / "dvanalyze"),
         "--root", str(corpus), *extra],
        capture_output=True, text=True)


def parse_findings(stdout: str) -> set[str]:
    import re
    out = set()
    for line in stdout.splitlines():
        m = re.match(FINDING_RE, line)
        if m:
            out.add(f"{m.group('path')}:{m.group('line')} {m.group('rule')}")
    return out


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--corpus-dir", required=True)
    parser.add_argument("--tools-dir", required=True)
    args = parser.parse_args()
    corpus = pathlib.Path(args.corpus_dir).resolve()
    tools_dir = pathlib.Path(args.tools_dir).resolve()

    expected = {
        line.strip()
        for line in (corpus / "expected.txt").read_text().splitlines()
        if line.strip() and not line.startswith("#")
    }

    # 1. Exact match against the golden findings.
    proc = scan(tools_dir, corpus, ["--no-baseline"])
    got = parse_findings(proc.stdout)
    if got != expected:
        for missing in sorted(expected - got):
            print(f"FAIL: expected finding not produced: {missing}")
        for extra in sorted(got - expected):
            print(f"FAIL: unexpected finding: {extra}")
        print(proc.stdout)
        return 1
    if proc.returncode != 1:
        print(f"FAIL: corpus scan should exit 1, got {proc.returncode}")
        return 1
    print(f"corpus OK: {len(got)} findings match expected.txt exactly")

    with tempfile.TemporaryDirectory(prefix="dvanalyze_corpus_") as tmp:
        baseline = pathlib.Path(tmp) / "baseline.json"

        # 2. A baseline of exactly these findings makes the scan green.
        proc = scan(tools_dir, corpus,
                    ["--write-baseline", "--baseline", str(baseline)])
        if proc.returncode != 0:
            print(f"FAIL: --write-baseline exited {proc.returncode}")
            print(proc.stdout, proc.stderr)
            return 1
        proc = scan(tools_dir, corpus, ["--baseline", str(baseline)])
        if proc.returncode != 0:
            print("FAIL: scan against its own baseline should be green")
            print(proc.stdout, proc.stderr)
            return 1
        print("baseline OK: round-trip gates to green")

        # 3. A stale entry (finding that no longer exists) must fail.
        data = json.loads(baseline.read_text())
        data["findings"].append({
            "rule": "reader-cap", "file": "src/core/gone.cpp",
            "line": 1, "message": "fixed long ago"})
        baseline.write_text(json.dumps(data))
        proc = scan(tools_dir, corpus, ["--baseline", str(baseline)])
        if proc.returncode != 1 or "stale-baseline" not in proc.stdout:
            print("FAIL: stale baseline entry was not flagged")
            print(proc.stdout, proc.stderr)
            return 1
        print("baseline OK: stale entries are flagged")
    return 0


if __name__ == "__main__":
    sys.exit(main())
