// dvanalyze corpus: checkpoint-coverage must fire on the unpolled
// refinement loop (line pinned in expected.txt).
#include <cstddef>
#include <vector>

namespace darkvec::runtime {
struct RunContext {
  void check() const;
};
RunContext* current();
}  // namespace darkvec::runtime

double refine(std::vector<double>* weights, std::size_t n, double eps) {
  darkvec::runtime::RunContext* ctx = darkvec::runtime::current();
  if (ctx != nullptr) ctx->check();  // polled once, then never again
  double delta = eps + 1;
  while (delta > eps && n != 0) {
    delta = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const double step = (*weights)[i] * 0.5;
      (*weights)[i] -= step;
      delta += step > 0 ? step : -step;
    }
  }
  return delta;
}
