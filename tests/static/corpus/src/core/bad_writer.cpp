// dvanalyze corpus: deterministic-iteration must fire on the hash-order
// walk feeding the JSON output.
#include <cstdint>
#include <string>
#include <unordered_map>

namespace obs {
std::string json_escape(const std::string& text);
}

std::string counters_to_json(
    const std::unordered_map<std::string, std::uint64_t>& counters) {
  std::string out = "{";
  for (const auto& [name, value] : counters) {
    out += "\"" + obs::json_escape(name) + "\":" + std::to_string(value);
    out += ",";
  }
  out += "}";
  return out;
}
