// dvanalyze corpus: io-error-taxonomy must fire on the raw std:: throw
// inside an IoPolicy-contract function.
#include <istream>
#include <stdexcept>

namespace io {
struct IoPolicy {};
struct IoReport {
  int records_read = 0;
  int records_skipped = 0;
};
}  // namespace io

io::IoReport scan_records(std::istream& in, const io::IoPolicy& policy) {
  (void)policy;
  io::IoReport report;
  char tag = 0;
  while (in.get(tag)) {
    if (tag == 0) {
      throw std::invalid_argument("zero tag");  // escapes io:: taxonomy
    }
    ++report.records_read;
  }
  return report;
}
