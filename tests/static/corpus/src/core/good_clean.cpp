// dvanalyze corpus: every invariant done right — zero findings. Each
// block is the clean twin of one bad_* corpus file.
#include <algorithm>
#include <cstdint>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace darkvec::runtime {
struct RunContext {
  void check() const;
};
RunContext* current();
}  // namespace darkvec::runtime

namespace io {
template <typename T>
bool read_pod(std::istream& in, T& value);
template <typename T>
void write_pod(std::ostream& out, const T& value);
struct IoPolicy {};
struct IoReport {
  int records_read = 0;
};
struct FormatError : std::runtime_error {
  using std::runtime_error::runtime_error;
};
}  // namespace io

// checkpoint-coverage: the convergence loop polls every sweep.
double refine(std::vector<double>* weights, std::size_t n, double eps) {
  darkvec::runtime::RunContext* ctx = darkvec::runtime::current();
  double delta = eps + 1;
  while (delta > eps && n != 0) {
    if (ctx != nullptr) ctx->check();  // sweep-granular cancellation
    delta = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const double step = (*weights)[i] * 0.5;
      (*weights)[i] -= step;
      delta += step > 0 ? step : -step;
    }
  }
  return delta;
}

// reader-cap: the decoded size is capped before it reaches reserve().
void load_index(std::istream& in, std::vector<std::uint32_t>* ids) {
  std::uint64_t n_ids = 0;
  io::read_pod(in, n_ids);
  if (n_ids > (std::uint64_t{1} << 24)) {
    throw io::FormatError("index count over cap");
  }
  ids->reserve(n_ids);
}

// deterministic-iteration: flatten-then-sort before touching the output.
void save_counters(
    std::ostream& out,
    const std::unordered_map<std::string, std::uint64_t>& counters) {
  std::vector<std::pair<std::string, std::uint64_t>> flat;
  flat.reserve(counters.size());
  for (const auto& [name, value] : counters) {
    flat.push_back({name, value});
  }
  std::sort(flat.begin(), flat.end());
  for (const auto& [name, value] : flat) {
    io::write_pod(out, value);
  }
}

// io-error-taxonomy: contract functions throw io:: types only.
io::IoReport scan_records(std::istream& in, const io::IoPolicy& policy) {
  (void)policy;
  io::IoReport report;
  char tag = 0;
  while (in.get(tag)) {
    if (tag == 0) {
      throw io::FormatError("zero tag");
    }
    ++report.records_read;
  }
  return report;
}
