// dvanalyze corpus: reader-cap must fire on the unclamped reserve().
#include <cstdint>
#include <istream>
#include <vector>

namespace io {
template <typename T>
bool read_pod(std::istream& in, T& value);
}

void load_index(std::istream& in, std::vector<std::uint32_t>* ids) {
  std::uint64_t n_ids = 0;
  io::read_pod(in, n_ids);
  ids->reserve(n_ids);  // attacker-sized allocation, no cap in sight
  for (std::uint64_t i = 0; i < n_ids; ++i) {
    std::uint32_t id = 0;
    if (!io::read_pod(in, id)) break;
    ids->push_back(id);
  }
}
