// dvanalyze corpus: guarded-field must fire on `hits` (no annotation)
// and stay quiet on everything else in the class.
#pragma once

#include <atomic>
#include <cstdint>

namespace darkvec::core {
class Mutex {};
}  // namespace darkvec::core

#define DV_GUARDED_BY(mu)

class SharedCounter {
 public:
  void bump();

 private:
  mutable darkvec::core::Mutex mu_;
  std::uint64_t total_ DV_GUARDED_BY(mu_) = 0;
  std::uint64_t hits = 0;  // shared, unguarded, unannotated
  std::atomic<std::uint32_t> readers{0};
  const int capacity = 64;
};
