// Negative-compile probe: writes a DV_GUARDED_BY field without holding
// its mutex. Under `clang++ -Wthread-safety -Werror=thread-safety-analysis`
// this file MUST fail to compile — tests/static/run_negative_compile.py
// asserts exactly that. Its twin guarded_write.cpp is the control.
#include "darkvec/core/annotations.hpp"

namespace {

class Counter {
 public:
  void bump() {
    value_ += 1;  // no lock held: thread-safety analysis must reject this
  }

  [[nodiscard]] int value() {
    darkvec::core::MutexLock lock(mu_);
    return value_;
  }

 private:
  darkvec::core::Mutex mu_;
  int value_ DV_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.bump();
  return c.value();
}
