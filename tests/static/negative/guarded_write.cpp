// Control for the negative-compile probe: identical to
// unguarded_write.cpp except the write holds the mutex, so this file
// MUST compile cleanly under -Wthread-safety. If it ever stops
// compiling, the harness flags a broken annotations header rather than
// a passing negative test.
#include "darkvec/core/annotations.hpp"

namespace {

class Counter {
 public:
  void bump() {
    darkvec::core::MutexLock lock(mu_);
    value_ += 1;
  }

  [[nodiscard]] int value() {
    darkvec::core::MutexLock lock(mu_);
    return value_;
  }

 private:
  darkvec::core::Mutex mu_;
  int value_ DV_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.bump();
  return c.value();
}
