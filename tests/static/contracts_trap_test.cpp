// Contract behavior in trap mode: a violated contract executes
// __builtin_trap(), dying by signal instead of unwinding. Verified with
// a gtest death test; skipped under sanitizer builds where fork-based
// death tests are unreliable.
#undef DARKVEC_CONTRACTS_OFF
#define DARKVEC_CONTRACTS_TRAP
#include "darkvec/core/contracts.hpp"

#include <gtest/gtest.h>

#if defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define DARKVEC_SKIP_DEATH_TESTS 1
#endif
#endif
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define DARKVEC_SKIP_DEATH_TESTS 1
#endif

namespace {

TEST(ContractsTrap, TrueConditionIsSilent) {
  EXPECT_NO_THROW(DV_PRECONDITION(1 + 1 == 2, "arithmetic works"));
}

TEST(ContractsTrapDeathTest, FalseConditionTraps) {
#if defined(DARKVEC_SKIP_DEATH_TESTS)
  GTEST_SKIP() << "death tests are unreliable under sanitizers";
#else
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(DV_PRECONDITION(false, "trap mode aborts"), "");
#endif
}

}  // namespace
