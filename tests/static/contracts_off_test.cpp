// Contract behavior with checks compiled out. DARKVEC_CONTRACTS_OFF is
// forced before the first include, overriding the build-wide mode for
// this TU only (OFF wins over TRAP inside contracts.hpp).
#define DARKVEC_CONTRACTS_OFF
#include "darkvec/core/contracts.hpp"

#include <gtest/gtest.h>

namespace {

TEST(ContractsOff, FalseConditionDoesNotThrow) {
  EXPECT_NO_THROW(DV_PRECONDITION(false, "compiled out"));
  EXPECT_NO_THROW(DV_POSTCONDITION(false, "compiled out"));
  EXPECT_NO_THROW(DV_INVARIANT(false, "compiled out"));
}

TEST(ContractsOff, ConditionIsNotEvaluated) {
  int calls = 0;
  DV_PRECONDITION(++calls > 0, "unevaluated in off mode");
  DV_INVARIANT(++calls > 0, "unevaluated in off mode");
  EXPECT_EQ(calls, 0);
}

// The condition must still *parse* in off mode (sizeof-guarded), so a
// contract cannot silently rot when its surrounding code changes. This
// is a compile-time property; the runtime assertion below just anchors
// the TU.
TEST(ContractsOff, ConditionStillTypeChecks) {
  const int n = 3;
  DV_PRECONDITION(n % 2 == 0, "still parsed, never run");
  SUCCEED();
}

}  // namespace
