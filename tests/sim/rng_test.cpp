#include "darkvec/sim/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace darkvec::sim {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDifferentStreams) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, ForkDoesNotPerturbParent) {
  Rng a(7);
  Rng b(7);
  (void)a.fork(1);
  (void)a.fork(2);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng parent(7);
  Rng f1 = parent.fork(1);
  Rng f2 = parent.fork(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (f1.next_u64() == f2.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(3);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 7.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 7.0);
  }
}

class RngUniformInt : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngUniformInt, StaysInRangeAndCoversIt) {
  const std::uint64_t n = GetParam();
  Rng rng(11);
  std::vector<int> hits(n, 0);
  const int draws = static_cast<int>(n) * 200;
  for (int i = 0; i < draws; ++i) {
    const std::uint64_t v = rng.uniform_int(n);
    ASSERT_LT(v, n);
    ++hits[v];
  }
  for (std::uint64_t v = 0; v < n; ++v) {
    EXPECT_GT(hits[v], 0) << "value " << v << " never drawn";
  }
}

INSTANTIATE_TEST_SUITE_P(Ranges, RngUniformInt,
                         ::testing::Values(1, 2, 3, 7, 16, 100));

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(13);
  const double rate = 0.25;
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(rate);
  EXPECT_NEAR(sum / n, 1.0 / rate, 0.1);
}

TEST(Rng, ExponentialIsPositive) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.exponential(2.0), 0.0);
}

class RngPoisson : public ::testing::TestWithParam<double> {};

TEST_P(RngPoisson, MeanAndVarianceMatch) {
  const double mean = GetParam();
  Rng rng(17);
  const int n = 20000;
  double sum = 0;
  double sum_sq = 0;
  for (int i = 0; i < n; ++i) {
    const double x = static_cast<double>(rng.poisson(mean));
    sum += x;
    sum_sq += x * x;
  }
  const double sample_mean = sum / n;
  const double sample_var = sum_sq / n - sample_mean * sample_mean;
  EXPECT_NEAR(sample_mean, mean, std::max(0.05, mean * 0.05));
  EXPECT_NEAR(sample_var, mean, std::max(0.2, mean * 0.1));
}

INSTANTIATE_TEST_SUITE_P(Means, RngPoisson,
                         ::testing::Values(0.5, 2.0, 10.0, 50.0, 200.0));

TEST(Rng, PoissonZeroMean) {
  Rng rng(1);
  EXPECT_EQ(rng.poisson(0.0), 0u);
  EXPECT_EQ(rng.poisson(-1.0), 0u);
}

TEST(Rng, NormalMoments) {
  Rng rng(19);
  const int n = 100000;
  double sum = 0;
  double sum_sq = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

}  // namespace
}  // namespace darkvec::sim
