#include "darkvec/sim/ports.hpp"

#include <gtest/gtest.h>

#include <map>
#include <unordered_set>

namespace darkvec::sim {
namespace {

using net::PortKey;
using net::Protocol;

PortKey tcp(std::uint16_t p) { return PortKey{p, Protocol::kTcp}; }

TEST(PortTable, SamplesOnlyListedKeys) {
  PortTable table({{tcp(23), 1.0}, {tcp(80), 2.0}});
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const PortKey k = table.sample(rng);
    EXPECT_TRUE(k == tcp(23) || k == tcp(80));
  }
}

TEST(PortTable, RespectsWeights) {
  PortTable table({{tcp(23), 0.9}, {tcp(80), 0.1}});
  Rng rng(2);
  int hits23 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (table.sample(rng) == tcp(23)) ++hits23;
  }
  EXPECT_NEAR(static_cast<double>(hits23) / n, 0.9, 0.02);
}

TEST(PortTable, NormalizesArbitraryWeights) {
  // Weights 3:1 behave exactly like 0.75:0.25.
  PortTable table({{tcp(1), 3.0}, {tcp(2), 1.0}});
  Rng rng(3);
  int hits1 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (table.sample(rng) == tcp(1)) ++hits1;
  }
  EXPECT_NEAR(static_cast<double>(hits1) / n, 0.75, 0.02);
}

TEST(PortTable, DropsNonPositiveWeights) {
  PortTable table({{tcp(1), 0.0}, {tcp(2), -1.0}, {tcp(3), 1.0}});
  EXPECT_EQ(table.size(), 1u);
  Rng rng(4);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(table.sample(rng), tcp(3));
}

TEST(PortTable, EmptyWhenAllWeightsDropped) {
  PortTable table({{tcp(1), 0.0}});
  EXPECT_TRUE(table.empty());
}

TEST(PortTable, DefaultIsEmpty) { EXPECT_TRUE(PortTable{}.empty()); }

TEST(PortTable, SingleEntryAlwaysSampled) {
  PortTable table({{tcp(445), 0.42}});
  Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(table.sample(rng), tcp(445));
}

class RandomPortKeys : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RandomPortKeys, ProducesDistinctKeysOfRequestedCount) {
  Rng rng(6);
  const auto keys = random_port_keys(GetParam(), rng);
  EXPECT_EQ(keys.size(), GetParam());
  std::unordered_set<PortKey> unique(keys.begin(), keys.end());
  EXPECT_EQ(unique.size(), keys.size());
}

INSTANTIATE_TEST_SUITE_P(Counts, RandomPortKeys,
                         ::testing::Values(0, 1, 10, 100, 1000));

TEST(RandomPortKeys, RespectsRange) {
  Rng rng(7);
  const auto keys = random_port_keys(500, rng, 1000, 2000);
  for (const PortKey& k : keys) {
    EXPECT_GE(k.port, 1000);
    EXPECT_LE(k.port, 2000);
  }
}

TEST(RandomPortKeys, UdpFractionApproximatelyHonored) {
  Rng rng(8);
  const auto keys = random_port_keys(2000, rng, 1, 65535, 0.3);
  std::size_t udp = 0;
  for (const PortKey& k : keys) {
    if (k.proto == Protocol::kUdp) ++udp;
  }
  EXPECT_NEAR(static_cast<double>(udp) / static_cast<double>(keys.size()),
              0.3, 0.05);
}

TEST(RandomPortKeys, SaturatesSmallRangeGracefully) {
  Rng rng(9);
  // Range of 4 ports x 2 protocols = at most 8 distinct keys.
  const auto keys = random_port_keys(100, rng, 10, 13, 0.5);
  EXPECT_LE(keys.size(), 8u);
  EXPECT_GE(keys.size(), 4u);
}

TEST(MakePortTable, SplitsResidualOverTail) {
  Rng rng(10);
  const std::vector<PortKey> tail = {tcp(100), tcp(200)};
  // Head takes 0.8, tail shares 0.2 -> 0.1 each.
  const PortTable table = make_port_table({{tcp(23), 0.8}}, tail);
  std::map<std::uint16_t, int> hits;
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++hits[table.sample(rng).port];
  EXPECT_NEAR(hits[23] / static_cast<double>(n), 0.8, 0.02);
  EXPECT_NEAR(hits[100] / static_cast<double>(n), 0.1, 0.02);
  EXPECT_NEAR(hits[200] / static_cast<double>(n), 0.1, 0.02);
}

TEST(MakePortTable, NoTailKeepsHeadOnly) {
  const PortTable table = make_port_table({{tcp(23), 0.5}}, {});
  EXPECT_EQ(table.size(), 1u);
}

TEST(MakePortTable, EmptyHeadUniformTail) {
  Rng rng(11);
  const PortTable table =
      make_port_table({}, {tcp(1), tcp(2), tcp(3), tcp(4)});
  std::map<std::uint16_t, int> hits;
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++hits[table.sample(rng).port];
  for (const auto& [port, count] : hits) {
    EXPECT_NEAR(count / static_cast<double>(n), 0.25, 0.02);
  }
}

TEST(MakePortTable, HeadOverOneDropsTailShare) {
  // Head weights sum to exactly 1: tail gets nothing.
  const PortTable table = make_port_table({{tcp(23), 1.0}}, {tcp(99)});
  Rng rng(12);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(table.sample(rng), tcp(23));
}

TEST(PortTableTest, SampleFromEmptyTableThrows) {
  const PortTable table;
  Rng rng(13);
  EXPECT_THROW((void)table.sample(rng), std::logic_error);
}

}  // namespace
}  // namespace darkvec::sim
