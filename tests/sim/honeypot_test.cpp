#include "darkvec/sim/honeypot.hpp"

#include <gtest/gtest.h>

namespace darkvec::sim {
namespace {

using net::IPv4;
using net::Packet;
using net::Protocol;

Packet pkt(std::int64_t ts, IPv4 src, std::uint16_t port,
           Protocol proto = Protocol::kTcp) {
  Packet p;
  p.ts = ts;
  p.src = src;
  p.dst_port = port;
  p.proto = proto;
  return p;
}

const IPv4 kBot{10, 1, 1, 1};
const IPv4 kScanner{10, 2, 2, 2};
const IPv4 kOtherPort{10, 3, 3, 3};

struct Fixture {
  net::Trace trace;
  GroupMap groups;
};

Fixture make_fixture(int bot_packets = 50) {
  Fixture f;
  for (int i = 0; i < bot_packets; ++i) {
    f.trace.push_back(pkt(i, kBot, 22));
  }
  f.trace.push_back(pkt(100, kScanner, 22));   // not a brute-force group
  f.trace.push_back(pkt(101, kOtherPort, 80)); // brute-force group, not SSH
  for (int i = 0; i < 20; ++i) {
    f.trace.push_back(pkt(200 + i, kOtherPort, 80));
  }
  f.trace.sort();
  f.groups = {{kBot, "unknown6_ssh"},
              {kScanner, "shodan"},
              {kOtherPort, "unknown6_ssh"}};
  return f;
}

const std::vector<std::string> kBruteforce = {"unknown6_ssh"};

TEST(Honeypot, CapturesOnlyBruteforceGroupSshTraffic) {
  const Fixture f = make_fixture();
  HoneypotOptions options;
  options.capture_probability = 1.0;
  const HoneypotLog log =
      simulate_honeypot(f.trace, f.groups, kBruteforce, options);
  EXPECT_TRUE(log.contains(kBot));
  EXPECT_FALSE(log.contains(kScanner));    // wrong group
  EXPECT_FALSE(log.contains(kOtherPort));  // never hit SSH
  EXPECT_EQ(log.distinct_sources(), 1u);
  EXPECT_EQ(log.attempts().size(), 50u);
}

TEST(Honeypot, CaptureProbabilityThinsTheLog) {
  const Fixture f = make_fixture(2000);
  HoneypotOptions options;
  options.capture_probability = 0.25;
  const HoneypotLog log =
      simulate_honeypot(f.trace, f.groups, kBruteforce, options);
  EXPECT_NEAR(static_cast<double>(log.attempts().size()), 500.0, 80.0);
}

TEST(Honeypot, AttemptsCarryDictionaryCredentials) {
  const Fixture f = make_fixture();
  HoneypotOptions options;
  options.capture_probability = 1.0;
  const HoneypotLog log =
      simulate_honeypot(f.trace, f.groups, kBruteforce, options);
  for (const HoneypotAttempt& a : log.attempts()) {
    EXPECT_FALSE(a.username.empty());
    EXPECT_FALSE(a.password.empty());
    EXPECT_EQ(a.src, kBot);
  }
}

TEST(Honeypot, DeterministicForSeed) {
  const Fixture f = make_fixture();
  const HoneypotLog l1 = simulate_honeypot(f.trace, f.groups, kBruteforce);
  const HoneypotLog l2 = simulate_honeypot(f.trace, f.groups, kBruteforce);
  ASSERT_EQ(l1.attempts().size(), l2.attempts().size());
  for (std::size_t i = 0; i < l1.attempts().size(); ++i) {
    EXPECT_EQ(l1.attempts()[i].username, l2.attempts()[i].username);
    EXPECT_EQ(l1.attempts()[i].ts, l2.attempts()[i].ts);
  }
}

TEST(Honeypot, ConfirmedFraction) {
  const Fixture f = make_fixture();
  HoneypotOptions options;
  options.capture_probability = 1.0;
  const HoneypotLog log =
      simulate_honeypot(f.trace, f.groups, kBruteforce, options);
  const std::vector<IPv4> cluster = {kBot, kScanner};
  EXPECT_DOUBLE_EQ(confirmed_fraction(log, cluster), 0.5);
  EXPECT_DOUBLE_EQ(confirmed_fraction(log, {}), 0.0);
}

TEST(Honeypot, EmptyInputs) {
  const HoneypotLog log =
      simulate_honeypot(net::Trace{}, {}, kBruteforce);
  EXPECT_TRUE(log.attempts().empty());
  EXPECT_EQ(log.distinct_sources(), 0u);
}

}  // namespace
}  // namespace darkvec::sim
