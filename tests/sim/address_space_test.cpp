#include "darkvec/sim/address_space.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace darkvec::sim {
namespace {

TEST(AddressAllocator, RandomAddressesAreUnique) {
  AddressAllocator alloc(Rng{1});
  const auto ips = alloc.allocate(5000, AddrPolicy::kRandom);
  std::unordered_set<net::IPv4> unique(ips.begin(), ips.end());
  EXPECT_EQ(unique.size(), ips.size());
}

TEST(AddressAllocator, UniquenessHoldsAcrossCalls) {
  AddressAllocator alloc(Rng{2});
  const auto a = alloc.allocate(1000, AddrPolicy::kRandom);
  const auto b = alloc.allocate(1000, AddrPolicy::kRandom);
  std::unordered_set<net::IPv4> all(a.begin(), a.end());
  for (const net::IPv4 ip : b) {
    EXPECT_TRUE(all.insert(ip).second) << ip.to_string();
  }
  EXPECT_EQ(alloc.allocated(), 2000u);
}

TEST(AddressAllocator, AvoidsReservedRanges) {
  AddressAllocator alloc(Rng{3});
  for (const net::IPv4 ip : alloc.allocate(5000, AddrPolicy::kRandom)) {
    const int a = ip.octet(0);
    EXPECT_NE(a, 0);
    EXPECT_NE(a, 10);
    EXPECT_NE(a, 127);
    EXPECT_LT(a, 224);
  }
}

TEST(AddressAllocator, SameSlash24PutsAllInOneSubnet) {
  AddressAllocator alloc(Rng{4});
  const auto ips = alloc.allocate(85, AddrPolicy::kSameSlash24);
  ASSERT_EQ(ips.size(), 85u);
  for (const net::IPv4 ip : ips) {
    EXPECT_EQ(ip.slash24(), ips[0].slash24());
  }
  std::unordered_set<net::IPv4> unique(ips.begin(), ips.end());
  EXPECT_EQ(unique.size(), ips.size());
}

TEST(AddressAllocator, SameSlash24HonorsPinnedBase) {
  AddressAllocator alloc(Rng{5});
  const net::IPv4 base{203, 0, 113, 0};
  const auto ips =
      alloc.allocate(10, AddrPolicy::kSameSlash24, 1, base.value());
  for (const net::IPv4 ip : ips) EXPECT_EQ(ip.slash24(), base);
}

TEST(AddressAllocator, SameSlash16SharedAcrossPopulations) {
  // The Shadowserver scenario: three allocations pinned to one /16.
  AddressAllocator alloc(Rng{6});
  const std::uint32_t base = 0xCB4C0000u;
  const auto g1 = alloc.allocate(61, AddrPolicy::kSameSlash16, 1, base);
  const auto g2 = alloc.allocate(36, AddrPolicy::kSameSlash16, 1, base);
  const auto g3 = alloc.allocate(16, AddrPolicy::kSameSlash16, 1, base);
  std::unordered_set<net::IPv4> all;
  for (const auto* group : {&g1, &g2, &g3}) {
    for (const net::IPv4 ip : *group) {
      EXPECT_EQ(ip.slash16(), net::IPv4{base});
      EXPECT_TRUE(all.insert(ip).second);
    }
  }
}

TEST(AddressAllocator, FewSlash24UsesRequestedSubnetCount) {
  AddressAllocator alloc(Rng{7});
  const auto ips = alloc.allocate(61, AddrPolicy::kFewSlash24, 23);
  std::unordered_set<net::IPv4> subnets;
  for (const net::IPv4 ip : ips) subnets.insert(ip.slash24());
  EXPECT_EQ(subnets.size(), 23u);
}

TEST(AddressAllocator, FewSlash24RoundRobinsEvenly) {
  AddressAllocator alloc(Rng{8});
  const auto ips = alloc.allocate(40, AddrPolicy::kFewSlash24, 4);
  std::unordered_map<net::IPv4, int> per_subnet;
  for (const net::IPv4 ip : ips) ++per_subnet[ip.slash24()];
  for (const auto& [subnet, count] : per_subnet) EXPECT_EQ(count, 10);
}

TEST(AddressAllocator, DistinctSlash24SpreadsWidely) {
  AddressAllocator alloc(Rng{9});
  const auto ips = alloc.allocate(1000, AddrPolicy::kDistinctSlash24);
  std::unordered_set<net::IPv4> subnets;
  for (const net::IPv4 ip : ips) subnets.insert(ip.slash24());
  // "1412 IPs in 1381 /24s": nearly one subnet per sender.
  EXPECT_GT(subnets.size(), 980u);
}

TEST(AddressAllocator, Slash24OverflowFallsBack) {
  // Requesting more than 256 addresses in one /24 must not loop forever.
  AddressAllocator alloc(Rng{10});
  const auto ips = alloc.allocate(300, AddrPolicy::kSameSlash24);
  std::unordered_set<net::IPv4> unique(ips.begin(), ips.end());
  EXPECT_EQ(unique.size(), 300u);
}

TEST(AddressAllocator, DeterministicForSameSeed) {
  AddressAllocator a(Rng{11});
  AddressAllocator b(Rng{11});
  EXPECT_EQ(a.allocate(100, AddrPolicy::kRandom),
            b.allocate(100, AddrPolicy::kRandom));
}

}  // namespace
}  // namespace darkvec::sim
