#include "darkvec/sim/scenario.hpp"

#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

namespace darkvec::sim {
namespace {

TEST(PaperScenario, GroupNamesAreUnique) {
  std::unordered_set<std::string> names;
  for (const PopulationSpec& p : paper_scenario()) {
    EXPECT_TRUE(names.insert(p.group).second) << p.group;
  }
}

TEST(PaperScenario, CoversAllNineGtClasses) {
  std::unordered_set<GtClass> seen;
  for (const PopulationSpec& p : paper_scenario()) seen.insert(p.label);
  for (const GtClass c : kAllGtClasses) {
    if (c == GtClass::kUnknown) continue;
    EXPECT_TRUE(seen.contains(c)) << to_string(c);
  }
}

TEST(PaperScenario, SmallGtClassesKeepPaperSupports) {
  std::unordered_map<std::string, std::size_t> count;
  for (const PopulationSpec& p : paper_scenario()) count[p.group] = p.senders;
  // Table 2 populations that must stay exact for per-class reports.
  EXPECT_EQ(count.at("stretchoid"), 104u);
  EXPECT_EQ(count.at("internet_census"), 103u);
  EXPECT_EQ(count.at("binaryedge"), 101u);
  EXPECT_EQ(count.at("sharashka"), 50u);
  EXPECT_EQ(count.at("ipip"), 49u);
  EXPECT_EQ(count.at("shodan"), 23u);
  EXPECT_EQ(count.at("engin_umich"), 10u);
}

TEST(PaperScenario, SmallClassesAreNotScalable) {
  for (const PopulationSpec& p : paper_scenario()) {
    if (p.label != GtClass::kUnknown && p.label != GtClass::kMirai &&
        p.label != GtClass::kCensys) {
      EXPECT_FALSE(p.scalable) << p.group;
    }
  }
}

TEST(PaperScenario, ContainsTheTable5UnknownGroups) {
  std::unordered_set<std::string> names;
  for (const PopulationSpec& p : paper_scenario()) names.insert(p.group);
  for (const char* expected :
       {"unknown1_netbios", "unknown2_smtp", "unknown3_smb", "unknown4_adb",
        "mirai_nofp", "unknown6_ssh", "unknown7_horizontal",
        "unknown8_hourly", "shadowserver_g1", "shadowserver_g2",
        "shadowserver_g3"}) {
    EXPECT_TRUE(names.contains(expected)) << expected;
  }
}

TEST(PaperScenario, UnknownGroupsCarryUnknownLabel) {
  for (const PopulationSpec& p : paper_scenario()) {
    if (p.group.rfind("unknown", 0) == 0 ||
        p.group.rfind("shadowserver", 0) == 0 ||
        p.group.rfind("background", 0) == 0 || p.group == "mirai_nofp") {
      EXPECT_EQ(p.label, GtClass::kUnknown) << p.group;
    }
  }
}

TEST(PaperScenario, OnlyMiraiCarriesFingerprint) {
  for (const PopulationSpec& p : paper_scenario()) {
    if (p.group == "mirai") {
      EXPECT_EQ(p.fingerprint_prob, 1.0);
    } else {
      EXPECT_EQ(p.fingerprint_prob, 0.0) << p.group;
    }
  }
}

TEST(PaperScenario, ShadowserverGroupsShareOneSlash16) {
  std::uint32_t base = 0;
  int found = 0;
  for (const PopulationSpec& p : paper_scenario()) {
    if (p.group.rfind("shadowserver", 0) != 0) continue;
    ++found;
    EXPECT_EQ(p.addr, AddrPolicy::kSameSlash16);
    EXPECT_NE(p.addr_base, 0u);
    if (base == 0) base = p.addr_base;
    EXPECT_EQ(p.addr_base, base);
  }
  EXPECT_EQ(found, 3);
}

TEST(PaperScenario, CensysUsesSevenPerTeamPortTeams) {
  for (const PopulationSpec& p : paper_scenario()) {
    if (p.group != "censys") continue;
    EXPECT_EQ(p.pattern, PatternKind::kTeamShifts);
    EXPECT_EQ(p.teams, 7);
    EXPECT_TRUE(p.per_team_ports);
    EXPECT_GT(p.base_rate_per_day, 0.0);
  }
}

TEST(PaperScenario, EnginUmichIsDnsOnlyImpulse) {
  for (const PopulationSpec& p : paper_scenario()) {
    if (p.group != "engin_umich") continue;
    EXPECT_EQ(p.pattern, PatternKind::kImpulse);
    ASSERT_EQ(p.top_ports.size(), 1u);
    EXPECT_EQ(p.top_ports[0].first.port, 53);
    EXPECT_EQ(p.top_ports[0].first.proto, net::Protocol::kUdp);
    EXPECT_EQ(p.top_ports[0].second, 1.0);
    EXPECT_EQ(p.random_ports, 0u);
  }
}

TEST(PaperScenario, BackscatterDominatesSenderCount) {
  std::size_t backscatter = 0;
  std::size_t total = 0;
  for (const PopulationSpec& p : paper_scenario()) {
    total += p.senders;
    if (p.group == "background_backscatter") backscatter = p.senders;
  }
  // One-shot senders are the majority of all observed sources (36% appear
  // exactly once in the paper).
  EXPECT_GT(backscatter, total / 3);
}

TEST(TinyScenario, HasThreePopulationsAndALabeledBotnet) {
  const auto pops = tiny_scenario();
  ASSERT_EQ(pops.size(), 3u);
  bool has_mirai = false;
  for (const PopulationSpec& p : pops) {
    if (p.label == GtClass::kMirai) has_mirai = true;
  }
  EXPECT_TRUE(has_mirai);
}

TEST(TinyScenario, IsSmall) {
  std::size_t total = 0;
  for (const PopulationSpec& p : tiny_scenario()) total += p.senders;
  EXPECT_LT(total, 200u);
}

}  // namespace
}  // namespace darkvec::sim
