#include "darkvec/sim/simulator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "darkvec/sim/scenario.hpp"

namespace darkvec::sim {
namespace {

using net::PortKey;
using net::Protocol;

PopulationSpec basic_population(std::string group, std::size_t senders) {
  PopulationSpec p;
  p.group = std::move(group);
  p.senders = senders;
  p.scalable = false;
  p.pattern = PatternKind::kPoisson;
  p.packets_per_day = 10;
  p.top_ports = {{PortKey{23, Protocol::kTcp}, 1.0}};
  return p;
}

SimConfig short_config(int days = 3, std::uint64_t seed = 1) {
  SimConfig c;
  c.days = days;
  c.seed = seed;
  return c;
}

TEST(Simulator, DeterministicForSameSeed) {
  const std::vector<PopulationSpec> pops = {basic_population("a", 10)};
  DarknetSimulator s1(short_config());
  DarknetSimulator s2(short_config());
  const SimResult r1 = s1.run(pops);
  const SimResult r2 = s2.run(pops);
  ASSERT_EQ(r1.trace.size(), r2.trace.size());
  for (std::size_t i = 0; i < r1.trace.size(); ++i) {
    EXPECT_EQ(r1.trace[i].ts, r2.trace[i].ts);
    EXPECT_EQ(r1.trace[i].src, r2.trace[i].src);
    EXPECT_EQ(r1.trace[i].dst_port, r2.trace[i].dst_port);
  }
}

TEST(Simulator, DifferentSeedsDiffer) {
  const std::vector<PopulationSpec> pops = {basic_population("a", 10)};
  const SimResult r1 = DarknetSimulator(short_config(3, 1)).run(pops);
  const SimResult r2 = DarknetSimulator(short_config(3, 2)).run(pops);
  // Same structure, different randomness.
  bool any_diff = r1.trace.size() != r2.trace.size();
  for (std::size_t i = 0; !any_diff && i < r1.trace.size(); ++i) {
    any_diff = r1.trace[i].src != r2.trace[i].src;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Simulator, TraceIsSorted) {
  const std::vector<PopulationSpec> pops = {basic_population("a", 20),
                                            basic_population("b", 20)};
  const SimResult r = DarknetSimulator(short_config()).run(pops);
  for (std::size_t i = 1; i < r.trace.size(); ++i) {
    EXPECT_LE(r.trace[i - 1].ts, r.trace[i].ts);
  }
}

TEST(Simulator, TimestampsStayInsideConfiguredWindow) {
  const std::vector<PopulationSpec> pops = {basic_population("a", 20)};
  const SimConfig config = short_config(5);
  const SimResult r = DarknetSimulator(config).run(pops);
  ASSERT_FALSE(r.trace.empty());
  const auto stats = r.trace.stats();
  EXPECT_GE(stats.first_ts, config.t0);
  EXPECT_LT(stats.last_ts, config.t0 + 5 * net::kSecondsPerDay);
}

TEST(Simulator, PacketCountTracksRate) {
  const std::vector<PopulationSpec> pops = {basic_population("a", 50)};
  const SimResult r = DarknetSimulator(short_config(10)).run(pops);
  // 50 senders x 10/day x 10 days = 5000 expected.
  EXPECT_NEAR(static_cast<double>(r.trace.size()), 5000.0, 500.0);
}

TEST(Simulator, ScaleMultipliesScalablePopulations) {
  PopulationSpec p = basic_population("a", 100);
  p.scalable = true;
  SimConfig config = short_config();
  config.scale = 0.5;
  const SimResult r =
      DarknetSimulator(config).run(std::vector<PopulationSpec>{p});
  EXPECT_EQ(r.groups.size(), 50u);
}

TEST(Simulator, ScaleLeavesNonScalablePopulationsAlone) {
  PopulationSpec p = basic_population("a", 100);
  p.scalable = false;
  SimConfig config = short_config();
  config.scale = 0.5;
  const SimResult r =
      DarknetSimulator(config).run(std::vector<PopulationSpec>{p});
  EXPECT_EQ(r.groups.size(), 100u);
}

TEST(Simulator, LabelsOnlyForKnownClasses) {
  PopulationSpec labeled = basic_population("known", 10);
  labeled.label = GtClass::kShodan;
  PopulationSpec unlabeled = basic_population("unknown", 10);
  const SimResult r = DarknetSimulator(short_config())
                          .run(std::vector<PopulationSpec>{labeled, unlabeled});
  EXPECT_EQ(r.labels.size(), 10u);
  EXPECT_EQ(r.groups.size(), 20u);
  for (const auto& [ip, cls] : r.labels) EXPECT_EQ(cls, GtClass::kShodan);
}

TEST(Simulator, GroupsRecordGeneratorPopulation) {
  const SimResult r = DarknetSimulator(short_config())
                          .run(std::vector<PopulationSpec>{
                              basic_population("alpha", 5),
                              basic_population("beta", 5)});
  std::size_t alpha = 0;
  std::size_t beta = 0;
  for (const auto& [ip, group] : r.groups) {
    if (group == "alpha") ++alpha;
    if (group == "beta") ++beta;
  }
  EXPECT_EQ(alpha, 5u);
  EXPECT_EQ(beta, 5u);
}

TEST(Simulator, FingerprintOnlyWhereConfigured) {
  PopulationSpec mirai = basic_population("mirai", 10);
  mirai.fingerprint_prob = 1.0;
  PopulationSpec clean = basic_population("clean", 10);
  const SimResult r = DarknetSimulator(short_config())
                          .run(std::vector<PopulationSpec>{mirai, clean});
  std::unordered_set<net::IPv4> mirai_ips;
  for (const auto& [ip, group] : r.groups) {
    if (group == "mirai") mirai_ips.insert(ip);
  }
  for (const net::Packet& p : r.trace) {
    if (mirai_ips.contains(p.src)) {
      EXPECT_TRUE(p.mirai_fingerprint);
    } else {
      EXPECT_FALSE(p.mirai_fingerprint);
    }
  }
}

TEST(Simulator, PortProfileRespected) {
  PopulationSpec p = basic_population("a", 20);
  p.top_ports = {{PortKey{23, Protocol::kTcp}, 0.9},
                 {PortKey{80, Protocol::kTcp}, 0.1}};
  const SimResult r =
      DarknetSimulator(short_config(10)).run(std::vector<PopulationSpec>{p});
  std::size_t port23 = 0;
  for (const net::Packet& pkt : r.trace) {
    if (pkt.dst_port == 23) ++port23;
  }
  EXPECT_NEAR(static_cast<double>(port23) /
                  static_cast<double>(r.trace.size()),
              0.9, 0.03);
}

TEST(Simulator, SameSlash24PolicyVisibleInTrace) {
  PopulationSpec p = basic_population("subnet", 30);
  p.addr = AddrPolicy::kSameSlash24;
  const SimResult r =
      DarknetSimulator(short_config()).run(std::vector<PopulationSpec>{p});
  std::unordered_set<net::IPv4> subnets;
  for (const auto& [ip, group] : r.groups) subnets.insert(ip.slash24());
  EXPECT_EQ(subnets.size(), 1u);
}

TEST(Simulator, GrowthPopulationRampsUp) {
  PopulationSpec p = basic_population("worm", 100);
  p.pattern = PatternKind::kGrowth;
  p.growth = 4.0;
  p.packets_per_day = 20;
  const SimConfig config = short_config(30);
  const SimResult r =
      DarknetSimulator(config).run(std::vector<PopulationSpec>{p});
  // Far more traffic in the last third than in the first third.
  const auto first = r.trace.slice(config.t0,
                                   config.t0 + 10 * net::kSecondsPerDay);
  const auto last = r.trace.slice(config.t0 + 20 * net::kSecondsPerDay,
                                  config.t0 + 30 * net::kSecondsPerDay);
  EXPECT_GT(last.size(), first.size() * 3);
}

TEST(Simulator, ChurnSendersHaveBoundedLifetimes) {
  PopulationSpec p = basic_population("bot", 200);
  p.pattern = PatternKind::kChurn;
  p.lifetime_days = 2;
  p.packets_per_day = 24;
  const SimConfig config = short_config(30);
  const SimResult r =
      DarknetSimulator(config).run(std::vector<PopulationSpec>{p});
  // Each sender's observed activity span should be far below the full
  // 30-day window on average.
  std::unordered_map<net::IPv4, std::pair<std::int64_t, std::int64_t>> spans;
  for (const net::Packet& pkt : r.trace) {
    auto [it, inserted] = spans.try_emplace(pkt.src, pkt.ts, pkt.ts);
    it->second.first = std::min(it->second.first, pkt.ts);
    it->second.second = std::max(it->second.second, pkt.ts);
  }
  double mean_span = 0;
  for (const auto& [ip, span] : spans) {
    mean_span += static_cast<double>(span.second - span.first);
  }
  mean_span /= static_cast<double>(spans.size());
  EXPECT_LT(mean_span, 8.0 * net::kSecondsPerDay);
}

TEST(Simulator, ImpulsePopulationIsSynchronized) {
  PopulationSpec p = basic_population("impulse", 10);
  p.pattern = PatternKind::kImpulse;
  p.impulses = 3;
  p.impulse_minutes = 5;
  p.impulse_packets = 20;
  const SimResult r =
      DarknetSimulator(short_config(30)).run(std::vector<PopulationSpec>{p});
  ASSERT_FALSE(r.trace.empty());
  // All packets must fall into at most 3 distinct 10-minute buckets.
  std::unordered_set<std::int64_t> buckets;
  for (const net::Packet& pkt : r.trace) buckets.insert(pkt.ts / 600);
  EXPECT_LE(buckets.size(), 6u);  // 3 impulses, each touching <= 2 buckets
}

TEST(Simulator, PerTeamPortsGiveTeamsDistinctTails) {
  PopulationSpec p = basic_population("teams", 20);
  p.pattern = PatternKind::kTeamShifts;
  p.teams = 2;
  p.slot_days = 1;
  p.packets_per_day = 200;
  p.top_ports.clear();
  p.random_ports = 50;
  p.per_team_ports = true;
  const SimResult r =
      DarknetSimulator(short_config(10)).run(std::vector<PopulationSpec>{p});
  // Split ports by sender parity (team assignment is index % teams, and
  // senders alternate teams). Gather per-sender port sets, then check the
  // two team-level unions differ substantially.
  std::unordered_map<net::IPv4, std::unordered_set<std::uint16_t>> per_sender;
  for (const net::Packet& pkt : r.trace) {
    per_sender[pkt.src].insert(pkt.dst_port);
  }
  // Union across senders: every sender in a team shares its table, so
  // sets within a team overlap heavily; across teams they mostly differ.
  // We verify total distinct ports ~ 2 x 50.
  std::unordered_set<std::uint16_t> all;
  for (const auto& [ip, ports] : per_sender) {
    all.insert(ports.begin(), ports.end());
  }
  EXPECT_GT(all.size(), 75u);
  EXPECT_LE(all.size(), 100u);
}

TEST(Simulator, EmptyScenarioYieldsEmptyResult) {
  const SimResult r =
      DarknetSimulator(short_config()).run(std::vector<PopulationSpec>{});
  EXPECT_TRUE(r.trace.empty());
  EXPECT_TRUE(r.labels.empty());
  EXPECT_TRUE(r.groups.empty());
}

TEST(Simulator, PaperScenarioSmokeTest) {
  SimConfig config = short_config(2);
  config.scale = 0.1;
  const SimResult r = DarknetSimulator(config).run(paper_scenario());
  EXPECT_GT(r.trace.size(), 1000u);
  EXPECT_GT(r.labels.size(), 400u);
  EXPECT_GT(r.groups.size(), r.labels.size());
  // All nine classes labeled somewhere.
  std::unordered_set<GtClass> seen;
  for (const auto& [ip, cls] : r.labels) seen.insert(cls);
  EXPECT_EQ(seen.size(), kNumKnownClasses);
}

}  // namespace
}  // namespace darkvec::sim
