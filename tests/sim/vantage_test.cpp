#include "darkvec/sim/vantage.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "darkvec/sim/scenario.hpp"
#include "darkvec/sim/simulator.hpp"

namespace darkvec::sim {
namespace {

net::Trace sample_trace() {
  SimConfig config;
  config.days = 3;
  config.seed = 17;
  return DarknetSimulator(config).run(tiny_scenario()).trace;
}

std::unordered_set<net::IPv4> sources_of(const net::Trace& t) {
  std::unordered_set<net::IPv4> out;
  for (const net::Packet& p : t) out.insert(p.src);
  return out;
}

TEST(Vantage, EveryPacketLandsInExactlyOneDarknet) {
  const net::Trace trace = sample_trace();
  const VantageSplit split = split_vantage_points(trace);
  EXPECT_EQ(split.darknet_a.size() + split.darknet_b.size(), trace.size());
}

TEST(Vantage, TracesStaySorted) {
  const VantageSplit split = split_vantage_points(sample_trace());
  for (const net::Trace* t : {&split.darknet_a, &split.darknet_b}) {
    for (std::size_t i = 1; i < t->size(); ++i) {
      EXPECT_LE((*t)[i - 1].ts, (*t)[i].ts);
    }
  }
}

TEST(Vantage, SingleVantageSendersDoNotLeak) {
  const net::Trace trace = sample_trace();
  VantageOptions options;
  options.both_probability = 0.0;
  const VantageSplit split = split_vantage_points(trace, options);
  const auto a = sources_of(split.darknet_a);
  const auto b = sources_of(split.darknet_b);
  for (const net::IPv4 ip : a) EXPECT_FALSE(b.contains(ip));
  EXPECT_EQ(split.senders_both, 0u);
}

TEST(Vantage, FullOverlapSharesEverySender) {
  const net::Trace trace = sample_trace();
  VantageOptions options;
  options.both_probability = 1.0;
  const VantageSplit split = split_vantage_points(trace, options);
  EXPECT_EQ(split.senders_only_a + split.senders_only_b, 0u);
  // With enough packets per sender, both darknets see almost everyone.
  const auto a = sources_of(split.darknet_a);
  const auto b = sources_of(split.darknet_b);
  EXPECT_GT(a.size() * 10, sources_of(trace).size() * 8);
  EXPECT_GT(b.size() * 10, sources_of(trace).size() * 8);
}

TEST(Vantage, OverlapFractionTracksProbability) {
  const net::Trace trace = sample_trace();
  VantageOptions options;
  options.both_probability = 0.3;
  const VantageSplit split = split_vantage_points(trace, options);
  const double total = static_cast<double>(
      split.senders_both + split.senders_only_a + split.senders_only_b);
  EXPECT_NEAR(static_cast<double>(split.senders_both) / total, 0.3, 0.1);
}

TEST(Vantage, DeterministicForSeed) {
  const net::Trace trace = sample_trace();
  const VantageSplit s1 = split_vantage_points(trace);
  const VantageSplit s2 = split_vantage_points(trace);
  ASSERT_EQ(s1.darknet_a.size(), s2.darknet_a.size());
  for (std::size_t i = 0; i < s1.darknet_a.size(); ++i) {
    EXPECT_EQ(s1.darknet_a[i].src, s2.darknet_a[i].src);
    EXPECT_EQ(s1.darknet_a[i].ts, s2.darknet_a[i].ts);
  }
}

TEST(Vantage, EmptyTrace) {
  const VantageSplit split = split_vantage_points(net::Trace{});
  EXPECT_TRUE(split.darknet_a.empty());
  EXPECT_TRUE(split.darknet_b.empty());
}

}  // namespace
}  // namespace darkvec::sim
