#include "darkvec/sim/temporal.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "darkvec/net/time.hpp"

namespace darkvec::sim {
namespace {

constexpr std::int64_t kDay = net::kSecondsPerDay;

TimeSpan span_days(int days) { return TimeSpan{0, days * kDay}; }

bool sorted(const std::vector<std::int64_t>& v) {
  return std::ranges::is_sorted(v);
}

bool within(const std::vector<std::int64_t>& v, TimeSpan s) {
  return std::ranges::all_of(
      v, [&](std::int64_t t) { return t >= s.t0 && t < s.t1; });
}

TEST(Poisson, CountMatchesRate) {
  Rng rng(1);
  const auto times = poisson_arrivals(span_days(30), 10.0, rng);
  EXPECT_NEAR(static_cast<double>(times.size()), 300.0, 50.0);
  EXPECT_TRUE(sorted(times));
  EXPECT_TRUE(within(times, span_days(30)));
}

TEST(Poisson, ZeroRateProducesNothing) {
  Rng rng(2);
  EXPECT_TRUE(poisson_arrivals(span_days(10), 0.0, rng).empty());
  EXPECT_TRUE(poisson_arrivals(span_days(10), -5.0, rng).empty());
}

TEST(Poisson, EmptySpanProducesNothing) {
  Rng rng(3);
  EXPECT_TRUE(poisson_arrivals(TimeSpan{100, 100}, 10.0, rng).empty());
  EXPECT_TRUE(poisson_arrivals(TimeSpan{100, 50}, 10.0, rng).empty());
}

TEST(Poisson, InterarrivalsAreExponential) {
  Rng rng(4);
  const double rate = 100.0;  // per day
  const auto times = poisson_arrivals(span_days(100), rate, rng);
  ASSERT_GT(times.size(), 1000u);
  double sum_gap = 0;
  for (std::size_t i = 1; i < times.size(); ++i) {
    sum_gap += static_cast<double>(times[i] - times[i - 1]);
  }
  const double mean_gap = sum_gap / static_cast<double>(times.size() - 1);
  EXPECT_NEAR(mean_gap, kDay / rate, kDay / rate * 0.1);
}

TEST(UniformTimes, CountAndBounds) {
  Rng rng(5);
  const auto times = uniform_times(span_days(7), 100, rng);
  EXPECT_EQ(times.size(), 100u);
  EXPECT_TRUE(sorted(times));
  EXPECT_TRUE(within(times, span_days(7)));
}

TEST(UniformTimes, ZeroCount) {
  Rng rng(6);
  EXPECT_TRUE(uniform_times(span_days(7), 0, rng).empty());
}

TEST(OnOff, DutyCycleApproximatelyHonored) {
  Rng rng(7);
  const auto intervals = on_off_intervals(span_days(60), 6.0, 18.0, rng);
  std::int64_t active = 0;
  for (const TimeSpan& s : intervals) active += s.length();
  const double duty =
      static_cast<double>(active) / static_cast<double>(60 * kDay);
  EXPECT_NEAR(duty, 0.25, 0.08);
}

TEST(OnOff, IntervalsAreClippedAndOrdered) {
  Rng rng(8);
  const auto intervals = on_off_intervals(span_days(10), 4.0, 8.0, rng);
  ASSERT_FALSE(intervals.empty());
  std::int64_t prev_end = 0;
  for (const TimeSpan& s : intervals) {
    EXPECT_GE(s.t0, 0);
    EXPECT_LE(s.t1, 10 * kDay);
    EXPECT_LT(s.t0, s.t1);
    EXPECT_GE(s.t0, prev_end);
    prev_end = s.t1;
  }
}

TEST(OnOff, ZeroOnHoursProducesNothing) {
  Rng rng(9);
  EXPECT_TRUE(on_off_intervals(span_days(10), 0.0, 8.0, rng).empty());
}

TEST(OnOff, ZeroOffHoursCoversWholeSpan) {
  Rng rng(10);
  const auto intervals = on_off_intervals(span_days(5), 6.0, 0.0, rng);
  std::int64_t active = 0;
  for (const TimeSpan& s : intervals) active += s.length();
  EXPECT_EQ(active, 5 * kDay);
}

TEST(TeamSlots, RoundRobinPartitionIsExactAndDisjoint) {
  const int teams = 7;
  std::vector<std::vector<TimeSpan>> slots;
  std::int64_t covered = 0;
  for (int t = 0; t < teams; ++t) {
    slots.push_back(team_slots(span_days(30), teams, t, 2.0));
    for (const TimeSpan& s : slots.back()) covered += s.length();
  }
  EXPECT_EQ(covered, 30 * kDay);  // exact partition
  // Disjoint: any instant belongs to exactly one team.
  for (std::int64_t probe = kDay / 2; probe < 30 * kDay; probe += kDay) {
    int owners = 0;
    for (int t = 0; t < teams; ++t) {
      for (const TimeSpan& s : slots[static_cast<std::size_t>(t)]) {
        if (probe >= s.t0 && probe < s.t1) ++owners;
      }
    }
    EXPECT_EQ(owners, 1) << "instant " << probe;
  }
}

TEST(TeamSlots, FirstSlotBelongsToTeamZero) {
  const auto slots = team_slots(span_days(30), 7, 0, 2.0);
  ASSERT_FALSE(slots.empty());
  EXPECT_EQ(slots[0].t0, 0);
  EXPECT_EQ(slots[0].t1, 2 * kDay);
}

TEST(TeamSlots, SlotSpacingIsTeamsTimesSlot) {
  const auto slots = team_slots(span_days(30), 7, 3, 2.0);
  ASSERT_GE(slots.size(), 2u);
  EXPECT_EQ(slots[0].t0, 3 * 2 * kDay);
  EXPECT_EQ(slots[1].t0, slots[0].t0 + 7 * 2 * kDay);
}

TEST(TeamSlots, DegenerateInputs) {
  EXPECT_TRUE(team_slots(span_days(30), 0, 0, 2.0).empty());
  EXPECT_TRUE(team_slots(span_days(30), 3, 0, 0.0).empty());
}

TEST(GrowthActivation, MonotoneInQuantile) {
  const TimeSpan span = span_days(30);
  std::int64_t prev = span.t0;
  for (double u = 0.0; u < 1.0; u += 0.05) {
    const std::int64_t t = growth_activation(span, u, 4.0);
    EXPECT_GE(t, prev);
    EXPECT_GE(t, span.t0);
    EXPECT_LE(t, span.t1);
    prev = t;
  }
}

TEST(GrowthActivation, SteepGrowthConcentratesLate) {
  const TimeSpan span = span_days(30);
  // With strong exponential growth, the median activation falls in the
  // second half of the period.
  const std::int64_t median = growth_activation(span, 0.5, 5.0);
  EXPECT_GT(median, span.t1 / 2);
}

TEST(GrowthActivation, ZeroGrowthIsUniform) {
  const TimeSpan span = span_days(30);
  EXPECT_EQ(growth_activation(span, 0.5, 0.0), 15 * kDay);
  EXPECT_EQ(growth_activation(span, 0.0, 0.0), 0);
}

TEST(ArrivalsInIntervals, StayInsideIntervals) {
  Rng rng(11);
  const std::vector<TimeSpan> intervals = {{0, kDay}, {5 * kDay, 6 * kDay}};
  const auto times = arrivals_in_intervals(intervals, 50.0, rng);
  EXPECT_TRUE(sorted(times));
  for (const std::int64_t t : times) {
    const bool inside = (t >= 0 && t < kDay) ||
                        (t >= 5 * kDay && t < 6 * kDay);
    EXPECT_TRUE(inside) << t;
  }
  // Two active days at 50/day.
  EXPECT_NEAR(static_cast<double>(times.size()), 100.0, 30.0);
}

TEST(ArrivalsInIntervals, EmptyIntervals) {
  Rng rng(12);
  EXPECT_TRUE(arrivals_in_intervals({}, 50.0, rng).empty());
}

}  // namespace
}  // namespace darkvec::sim
