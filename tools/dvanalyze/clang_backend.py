"""libclang frontend for dvanalyze.

When the clang Python bindings can be imported *and* a libclang shared
library loads, files are parsed into real ASTs and lowered into the
same SourceModel the lite frontend produces, so the rules see
clang-accurate extents (macro-expanded bodies, correctly classified
fields, loop kinds from the grammar rather than token heuristics).

Compile flags come from the exported compile_commands.json when one is
available; headers and files without an entry fall back to a bare
`-std=c++20 -Iinclude` parse, which is enough for structure recovery —
the rules only need shapes, not overload resolution.

Everything here is defensive: any import, load or parse failure makes
the caller fall back to the lite frontend for that file. An
environment without libclang loses no coverage, only precision.
"""

from __future__ import annotations

import functools
import pathlib

from . import cppmodel


@functools.lru_cache(maxsize=1)
def _cindex():
    try:
        from clang import cindex  # type: ignore[import-not-found]
    except ImportError:
        return None
    try:
        cindex.Index.create()
    except Exception:  # library missing or ABI mismatch
        return None
    return cindex


def available() -> bool:
    return _cindex() is not None


@functools.lru_cache(maxsize=4)
def _compdb(compdb_dir: str | None):
    ci = _cindex()
    if ci is None or compdb_dir is None:
        return None
    try:
        return ci.CompilationDatabase.fromDirectory(compdb_dir)
    except Exception:
        return None


def _args_for(path: pathlib.Path, compdb_dir: pathlib.Path | None,
              root_include: pathlib.Path) -> list[str]:
    db = _compdb(str(compdb_dir) if compdb_dir else None)
    if db is not None:
        try:
            cmds = db.getCompileCommands(str(path.resolve()))
        except Exception:
            cmds = None
        if cmds:
            # Drop the compiler argv[0] and the source file itself.
            args = [a for a in list(cmds[0].arguments)[1:]
                    if a != str(path.resolve()) and a != "-c" and
                    not a.endswith((".o", ".cpp", ".cc", ".cxx"))]
            out = []
            skip = False
            for a in args:
                if skip:
                    skip = False
                    continue
                if a == "-o":
                    skip = True
                    continue
                out.append(a)
            return out
    return ["-std=c++20", f"-I{root_include}"]


def build_model(rel: str, text: str, path: pathlib.Path,
                compdb_dir: pathlib.Path | None
                ) -> cppmodel.SourceModel | None:
    ci = _cindex()
    if ci is None:
        return None
    stripped, comments = cppmodel.strip_comments_and_strings(text)
    model = cppmodel.SourceModel(path=rel, text=text, stripped=stripped,
                                 comments=comments, backend="clang")
    root_include = path.resolve()
    for parent in path.resolve().parents:
        if (parent / "include" / "darkvec").is_dir():
            root_include = parent / "include"
            break
    try:
        index = ci.Index.create()
        tu = index.parse(
            str(path), args=_args_for(path, compdb_dir, root_include),
            unsaved_files=[(str(path), text)],
            options=ci.TranslationUnit.PARSE_DETAILED_PROCESSING_RECORD)
    except Exception:
        return None
    try:
        _lower(ci, model, tu.cursor, str(path))
    except Exception:
        return None
    return model


def _in_file(cursor, path: str) -> bool:
    loc = cursor.location
    return loc.file is not None and str(loc.file) == path


def _lower(ci, model: cppmodel.SourceModel, root, path: str) -> None:
    K = ci.CursorKind
    fn_kinds = {K.FUNCTION_DECL, K.CXX_METHOD, K.CONSTRUCTOR, K.DESTRUCTOR,
                K.FUNCTION_TEMPLATE}
    cls_kinds = {K.CLASS_DECL, K.STRUCT_DECL, K.CLASS_TEMPLATE}

    def walk(cursor):
        for child in cursor.get_children():
            if not _in_file(child, path):
                continue
            if child.kind in fn_kinds and child.is_definition():
                fn = _lower_function(ci, model, child)
                if fn is not None:
                    model.functions.append(fn)
                walk(child)  # local classes
            elif child.kind in cls_kinds and child.is_definition():
                model.classes.append(_lower_class(ci, model, child))
                walk(child)  # methods defined inline
            else:
                walk(child)

    walk(root)


def _extent_offsets(cursor) -> tuple[int, int]:
    return cursor.extent.start.offset, cursor.extent.end.offset


def _lower_function(ci, model: cppmodel.SourceModel,
                    cursor) -> cppmodel.Function | None:
    K = ci.CursorKind
    body = next((c for c in cursor.get_children()
                 if c.kind == K.COMPOUND_STMT), None)
    if body is None:
        return None
    b0, b1 = _extent_offsets(body)
    params = ", ".join(
        f"{c.type.spelling} {c.spelling}" for c in cursor.get_children()
        if c.kind == K.PARM_DECL)
    try:
        ret = cursor.result_type.spelling
    except Exception:
        ret = ""
    fn = cppmodel.Function(
        name=cursor.spelling, line=cursor.location.line, ret=ret,
        params=params, body_start=b0 + 1, body_end=max(b0 + 1, b1 - 1))
    _lower_loops(ci, model, fn, body, depth=-1)
    return fn


def _lower_loops(ci, model: cppmodel.SourceModel, fn: cppmodel.Function,
                 node, depth: int) -> None:
    K = ci.CursorKind
    loop_kinds = {K.FOR_STMT: "for", K.WHILE_STMT: "while",
                  K.DO_STMT: "do", K.CXX_FOR_RANGE_STMT: "range-for"}
    for child in node.get_children():
        kind = loop_kinds.get(child.kind)
        if kind is not None:
            children = list(child.get_children())
            body = children[-1] if children else child
            b0, b1 = _extent_offsets(body)
            e0, _ = _extent_offsets(child)
            header = model.stripped[e0:b0]
            fn.loops.append(cppmodel.Loop(
                kind=kind, line=child.location.line,
                header=header, body_start=b0, body_end=b1,
                depth=max(0, depth)))
            _lower_loops(ci, model, fn, child, depth + 1)
        elif child.kind == K.LAMBDA_EXPR:
            children = list(child.get_children())
            body = next((c for c in children
                         if c.kind == K.COMPOUND_STMT), None)
            if body is not None:
                b0, b1 = _extent_offsets(body)
                fn.lambdas.append(cppmodel.Lambda(
                    line=child.location.line, capture="",
                    body_start=b0 + 1, body_end=max(b0 + 1, b1 - 1)))
            _lower_loops(ci, model, fn, child, depth + 1)
        elif child.kind == K.COMPOUND_STMT:
            _lower_loops(ci, model, fn, child, depth + 1)
        else:
            _lower_loops(ci, model, fn, child, depth)


def _lower_class(ci, model: cppmodel.SourceModel, cursor) -> cppmodel.ClassDef:
    K = ci.CursorKind
    cls = cppmodel.ClassDef(
        name=cursor.spelling,
        kind="struct" if cursor.kind == K.STRUCT_DECL else "class",
        line=cursor.location.line)
    for child in cursor.get_children():
        if child.kind != K.FIELD_DECL:
            continue
        e0, e1 = _extent_offsets(child)
        decl = model.stripped[e0:e1]
        cls.members.append(cppmodel.Member(
            name=child.spelling, line=child.location.line,
            decl=" ".join(decl.split()),
            type_text=child.type.spelling))
    return cls
