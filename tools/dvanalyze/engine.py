"""dvanalyze engine: file discovery, frontends, suppressions, baseline.

The engine walks the analyzed roots (or the translation units named by
an exported compile_commands.json), parses each file with the best
available frontend — libclang when the Python bindings and a loadable
libclang are present, the built-in structural model otherwise — runs
the rule catalogue, then folds in `// dv-suppress(rule): reason`
comments and the committed baseline.

Suppression contract: a suppression covers findings on its own line or
the line directly below (comment-above style); the reason is
mandatory; a suppression that matches nothing is itself reported
(unused-suppression), so stale escapes cannot accumulate.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib

from . import clang_backend, cppmodel, rules

SCAN_ROOTS = ("src", "include", "tools")
EXTENSIONS = {".cpp", ".hpp", ".h", ".cc", ".cxx"}
#: the analyzer must not analyze itself or the lint twin
EXCLUDE_PREFIXES = ("tools/dvanalyze",)


@dataclasses.dataclass
class ScanResult:
    findings: list[rules.Finding]
    suppressed: list[tuple[rules.Finding, str]]  # finding, reason
    meta_findings: list[rules.Finding]  # bad/unused suppressions
    files_scanned: int = 0
    backend: str = "lite"

    @property
    def unsuppressed(self) -> list[rules.Finding]:
        return self.findings + self.meta_findings


def discover_files(root: pathlib.Path,
                   compdb: pathlib.Path | None) -> list[pathlib.Path]:
    files: list[pathlib.Path] = []
    seen: set[pathlib.Path] = set()
    if compdb is not None and compdb.is_file():
        try:
            entries = json.loads(compdb.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            entries = []
        for entry in entries:
            p = pathlib.Path(entry.get("file", ""))
            if not p.is_absolute():
                p = pathlib.Path(entry.get("directory", ".")) / p
            try:
                p = p.resolve()
                rel = p.relative_to(root.resolve()).as_posix()
            except (OSError, ValueError):
                continue
            if rel.startswith(SCAN_ROOTS) and p.suffix in EXTENSIONS and \
                    not rel.startswith(EXCLUDE_PREFIXES) and p not in seen:
                seen.add(p)
                files.append(p)
    # The compilation database only lists TUs; headers (and everything
    # when no compdb was exported) come from the tree walk.
    for top in SCAN_ROOTS:
        base = root / top
        if not base.is_dir():
            continue
        for p in sorted(base.rglob("*")):
            if p.suffix in EXTENSIONS and p.is_file():
                rel = p.relative_to(root).as_posix()
                if rel.startswith(EXCLUDE_PREFIXES):
                    continue
                rp = p.resolve()
                if rp not in seen:
                    seen.add(rp)
                    files.append(p)
    return sorted(files, key=lambda p: p.as_posix())


def parse_file(root: pathlib.Path, path: pathlib.Path,
               backend: str, compdb_dir: pathlib.Path | None
               ) -> cppmodel.SourceModel:
    rel = path.resolve().relative_to(root.resolve()).as_posix()
    text = path.read_text(encoding="utf-8", errors="replace")
    if backend == "clang":
        model = clang_backend.build_model(rel, text, path, compdb_dir)
        if model is not None:
            return model
        # fall back per-file rather than failing the scan
    return cppmodel.build_model(rel, text)


def resolve_backend(requested: str) -> str:
    if requested == "lite":
        return "lite"
    available = clang_backend.available()
    if requested == "clang":
        if not available:
            raise RuntimeError(
                "backend 'clang' requested but the libclang Python bindings "
                "are not importable (pip package `libclang` or distro "
                "python3-clang)")
        return "clang"
    return "clang" if available else "lite"


def scan(root: pathlib.Path, compdb: pathlib.Path | None,
         backend: str = "auto",
         only: set[str] | None = None) -> ScanResult:
    backend = resolve_backend(backend)
    compdb_dir = compdb.parent if compdb is not None else None
    raw: list[rules.Finding] = []
    models: dict[str, cppmodel.SourceModel] = {}
    files = discover_files(root, compdb)
    for path in files:
        model = parse_file(root, path, backend, compdb_dir)
        models[model.path] = model
        raw.extend(rules.run_rules(model, only))

    kept: list[rules.Finding] = []
    suppressed: list[tuple[rules.Finding, str]] = []
    meta: list[rules.Finding] = []
    used: set[tuple[str, int, str]] = set()  # (path, line, rule)
    for f in sorted(raw, key=lambda f: (f.path, f.line, f.rule)):
        model = models[f.path]
        sup = model.suppressions()
        reason = None
        for cover_line in (f.line, f.line - 1):
            for rule_id, why in sup.get(cover_line, ()):
                if rule_id == f.rule:
                    reason = why
                    used.add((f.path, cover_line, rule_id))
                    break
            if reason is not None:
                break
        if reason is None:
            kept.append(f)
        elif not reason:
            meta.append(rules.Finding(
                "bad-suppression", f.path, f.line,
                f"dv-suppress({f.rule}) has no reason; every suppression "
                "must justify itself inline"))
        else:
            suppressed.append((f, reason))
    # Unknown rule ids and suppressions that matched nothing.
    for path, model in models.items():
        for line, entries in model.suppressions().items():
            for rule_id, _ in entries:
                if rule_id not in rules.ALL_RULES:
                    meta.append(rules.Finding(
                        "bad-suppression", path, line,
                        f"dv-suppress names unknown rule '{rule_id}' "
                        f"(known: {', '.join(sorted(rules.ALL_RULES))})"))
                elif (path, line, rule_id) not in used:
                    meta.append(rules.Finding(
                        "unused-suppression", path, line,
                        f"dv-suppress({rule_id}) matches no finding; "
                        "remove the stale suppression"))
    return ScanResult(findings=kept, suppressed=suppressed,
                      meta_findings=sorted(
                          meta, key=lambda f: (f.path, f.line, f.rule)),
                      files_scanned=len(files), backend=backend)


# --------------------------------------------------------------------------
# Baseline: a committed snapshot of accepted findings. The burn-down
# drives it to empty; the file stays so CI can prove "zero and not
# drifting" and so an emergency escape (baseline a finding rather than
# block a release) has a paved path.

def baseline_key(f: rules.Finding) -> dict[str, object]:
    return {"rule": f.rule, "file": f.path, "line": f.line,
            "message": f.message}


def load_baseline(path: pathlib.Path) -> list[dict[str, object]]:
    data = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(data, dict) or data.get("version") != 1 or \
            not isinstance(data.get("findings"), list):
        raise ValueError(
            f"{path}: baseline must be {{'version': 1, 'findings': [...]}}")
    for entry in data["findings"]:
        if not isinstance(entry, dict) or \
                not {"rule", "file", "line"} <= set(entry):
            raise ValueError(f"{path}: malformed baseline entry {entry!r}")
    return data["findings"]


def write_baseline(path: pathlib.Path, findings: list[rules.Finding]) -> None:
    data = {"version": 1,
            "findings": [baseline_key(f) for f in findings]}
    path.write_text(json.dumps(data, indent=2) + "\n", encoding="utf-8")


def diff_baseline(findings: list[rules.Finding],
                  baseline: list[dict[str, object]]
                  ) -> tuple[list[rules.Finding], list[dict[str, object]]]:
    """(new findings not in the baseline, stale baseline entries)."""
    def key(rule: object, file: object, line: object) -> tuple:
        return (rule, file, line)
    base_keys = {key(e["rule"], e["file"], e["line"]) for e in baseline}
    found_keys = {key(f.rule, f.path, f.line) for f in findings}
    new = [f for f in findings
           if key(f.rule, f.path, f.line) not in base_keys]
    stale = [e for e in baseline
             if key(e["rule"], e["file"], e["line"]) not in found_keys]
    return new, stale
