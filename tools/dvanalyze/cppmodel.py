"""Lightweight structural C++ model for dvanalyze.

This is the fallback frontend: a tokenizer plus a brace-structure pass
that recovers the handful of syntactic shapes the rules reason about —
function definitions (name, parameters, return type, body extent),
loops inside bodies (kind, header, body extent, nesting depth),
lambdas, class/struct definitions with their data members, and local
variable declarations. It is deliberately *not* a C++ parser: it only
needs to be right about the constructs this codebase actually writes
(clang-format'd C++20, no macros that open/close braces), and the
libclang frontend (clang_backend.py) produces the same model with full
semantic fidelity when bindings are available.

Both frontends emit the dataclasses below; the rules in rules.py are
frontend-agnostic.
"""

from __future__ import annotations

import bisect
import dataclasses
import re

# --------------------------------------------------------------------------
# Comment/string stripping (line-structure preserving) and comment capture.

_SUPPRESS_RE = re.compile(
    r"dv-suppress\(\s*([a-z0-9-]+)\s*\)\s*(?::\s*(.*?))?\s*(?:\*/|$)")
_BENIGN_RE = re.compile(r"dv-benign-race\s*(?::\s*(.*?))?\s*(?:\*/|$)")


def strip_comments_and_strings(text: str) -> tuple[str, dict[int, str]]:
    """Returns (stripped_text, comments_by_line). The stripped text has
    every comment and string/char literal blanked with spaces so offsets
    and line numbers are preserved exactly; comments_by_line maps a
    1-based line number to the concatenated comment text on that line.
    """
    out: list[str] = []
    comments: dict[int, str] = {}
    line = 1
    i, n = 0, len(text)

    def note_comment(lineno: int, body: str) -> None:
        if body.strip():
            comments[lineno] = comments.get(lineno, "") + " " + body

    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            start = i
            while i < n and text[i] != "\n":
                i += 1
            note_comment(line, text[start:i])
            out.append(" " * (i - start))
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            start_line = line
            buf: list[str] = []
            out.append("  ")
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] == "\n":
                    note_comment(line, "".join(buf))
                    buf = []
                    out.append("\n")
                    line += 1
                else:
                    buf.append(text[i])
                    out.append(" ")
                i += 1
            note_comment(line if buf else start_line, "".join(buf))
            i = min(i + 2, n)
            out.append("  " if i <= n else "")
        elif c in "\"'":
            quote = c
            out.append(" ")
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\" and i + 1 < n:
                    out.append("  ")
                    i += 2
                    continue
                if text[i] == "\n":
                    out.append("\n")
                    line += 1
                else:
                    out.append(" ")
                i += 1
            out.append(" ")
            i += 1
        elif c == "\n":
            out.append("\n")
            line += 1
            i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out), comments


# --------------------------------------------------------------------------
# Tokenizer.

_TOKEN_RE = re.compile(
    r"[A-Za-z_][A-Za-z0-9_]*"          # identifier / keyword
    r"|\d[\dxXbB'.eEpPfFuUlL\da-fA-F+-]*"  # numeric literal (coarse)
    r"|::|->\*?|\+\+|--|<<=?|>>=?|<=>|[<>=!+\-*/%&|^]=|&&|\|\||[{}()\[\];,:<>=!+\-*/%&|^~?.#]",
)


@dataclasses.dataclass
class Token:
    text: str
    start: int  # char offset into the (stripped) text

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.text!r}@{self.start})"


def tokenize(stripped: str) -> list[Token]:
    return [Token(m.group(0), m.start()) for m in _TOKEN_RE.finditer(stripped)]


# --------------------------------------------------------------------------
# Model dataclasses (shared with the libclang frontend).


@dataclasses.dataclass
class Loop:
    kind: str          # "for", "while", "do", "range-for"
    line: int
    header: str        # text inside the control parens ("" for do)
    body_start: int    # char offsets into the stripped text
    body_end: int
    depth: int         # 0 = directly inside the function body


@dataclasses.dataclass
class Lambda:
    line: int
    capture: str
    body_start: int
    body_end: int
    #: name of the call this lambda is an argument of, "" if none
    call_target: str = ""


@dataclasses.dataclass
class Function:
    name: str
    line: int
    #: text before the name (return type and specifiers), "" for ctors
    ret: str
    params: str        # text inside the parameter parens
    body_start: int
    body_end: int
    loops: list[Loop] = dataclasses.field(default_factory=list)
    lambdas: list[Lambda] = dataclasses.field(default_factory=list)


@dataclasses.dataclass
class Member:
    name: str
    line: int
    decl: str          # full declaration text (one statement)
    #: declaration minus the member name and initializer: the type text
    type_text: str = ""


@dataclasses.dataclass
class ClassDef:
    name: str
    line: int
    kind: str          # "class" | "struct"
    members: list[Member] = dataclasses.field(default_factory=list)


@dataclasses.dataclass
class SourceModel:
    path: str                      # repo-relative path
    text: str                      # raw file text
    stripped: str                  # comments/strings blanked
    comments: dict[int, str]       # per-line comment text
    functions: list[Function] = dataclasses.field(default_factory=list)
    classes: list[ClassDef] = dataclasses.field(default_factory=list)
    backend: str = "lite"

    def line_of(self, offset: int) -> int:
        return bisect.bisect_right(self._line_starts(), offset)

    def _line_starts(self) -> list[int]:
        starts = getattr(self, "_starts", None)
        if starts is None:
            starts = [0]
            for i, c in enumerate(self.stripped):
                if c == "\n":
                    starts.append(i + 1)
            self._starts = starts
        return starts

    def body_text(self, start: int, end: int) -> str:
        return self.stripped[start:end]

    def suppressions(self) -> dict[int, list[tuple[str, str]]]:
        """Per-line `dv-suppress(rule): reason` entries parsed from the
        comments. A suppression covers findings on its own line and on
        the immediately following line (comment-above style)."""
        out: dict[int, list[tuple[str, str]]] = {}
        for lineno, comment in self.comments.items():
            for m in _SUPPRESS_RE.finditer(comment):
                out.setdefault(lineno, []).append((m.group(1),
                                                   (m.group(2) or "").strip()))
        return out

    def benign_race_lines(self) -> dict[int, str]:
        out: dict[int, str] = {}
        for lineno, comment in self.comments.items():
            m = _BENIGN_RE.search(comment)
            if m:
                out[lineno] = (m.group(1) or "").strip()
        return out


# --------------------------------------------------------------------------
# Structure recovery.

_CONTROL_KEYWORDS = {
    "if", "for", "while", "switch", "catch", "do", "else", "return",
    "sizeof", "alignof", "decltype", "new", "delete", "throw", "co_return",
    "co_await", "static_assert", "alignas", "noexcept", "requires",
}
_ANNOTATION_MACROS = {
    "DV_GUARDED_BY", "DV_PT_GUARDED_BY", "DV_REQUIRES", "DV_ACQUIRE",
    "DV_RELEASE", "DV_TRY_ACQUIRE", "DV_EXCLUDES", "DV_ASSERT_CAPABILITY",
    "DV_RETURN_CAPABILITY", "DV_CAPABILITY", "DV_THREAD_ANNOTATION",
}
_POST_PAREN_SKIP = {
    "const", "noexcept", "override", "final", "mutable", "&", "&&",
    "->", "try",
} | _ANNOTATION_MACROS


def _match_group(tokens: list[Token], i: int, open_tok: str,
                 close_tok: str) -> int:
    """Index of the token closing the group opened at tokens[i]."""
    depth = 0
    for j in range(i, len(tokens)):
        t = tokens[j].text
        if t == open_tok:
            depth += 1
        elif t == close_tok:
            depth -= 1
            if depth == 0:
                return j
    return len(tokens) - 1


def build_model(path: str, text: str) -> SourceModel:
    stripped, comments = strip_comments_and_strings(text)
    model = SourceModel(path=path, text=text, stripped=stripped,
                        comments=comments)
    tokens = tokenize(stripped)
    _find_functions(model, tokens)
    _find_classes(model, tokens)
    return model


def _find_functions(model: SourceModel, tokens: list[Token]) -> None:
    """Function definitions: `name ( params ) [qualifiers] [: init] {`.
    Walks every paren group and checks its context."""
    n = len(tokens)
    i = 0
    while i < n:
        if tokens[i].text != "(" or i == 0:
            i += 1
            continue
        prev = tokens[i - 1].text
        if not re.fullmatch(r"[A-Za-z_]\w*", prev) or \
                prev in _CONTROL_KEYWORDS or prev in _ANNOTATION_MACROS:
            i += 1
            continue
        close = _match_group(tokens, i, "(", ")")
        # Skip qualifiers / trailing return / annotation macro calls /
        # constructor init list up to a `{` (function) or `;`/other
        # (declaration or plain call).
        j = close + 1
        while j < n:
            t = tokens[j].text
            if t in _POST_PAREN_SKIP:
                if t == "->":  # trailing return type: skip to `{` or `;`
                    while j < n and tokens[j].text not in ("{", ";"):
                        j += 1
                    continue
                j += 1
                if j < n and tokens[j].text == "(":
                    j = _match_group(tokens, j, "(", ")") + 1
                continue
            if t == ":":  # constructor init list
                depth = 0
                while j < n:
                    tt = tokens[j].text
                    if tt in "([":
                        depth += 1
                    elif tt in ")]":
                        depth -= 1
                    elif tt == "{" and depth == 0:
                        break
                    elif tt == ";" and depth == 0:
                        break
                    j += 1
                continue
            break
        if j >= n or tokens[j].text != "{":
            i = close + 1
            continue
        # Reject calls: a call expression's name is preceded by an
        # operator/keyword that cannot end a return type. A definition's
        # name is preceded by a type token, `::`, `>`, `*`, `&`, or a
        # statement boundary.
        k = i - 2
        bad_prefix = {"(", ",", "return", "=", "+", "-", "!", "<<", ">>",
                      "&&", "||", "?", "[", "."}
        if k >= 0 and tokens[k].text in bad_prefix:
            i = close + 1
            continue
        name = prev
        # Qualified name: walk back over `A::B::name`.
        back = i - 1
        while back >= 2 and tokens[back - 1].text == "::":
            back -= 2
        ret_start = back
        while ret_start >= 1 and tokens[ret_start - 1].text not in (
                ";", "}", "{", ":", ")"):
            ret_start -= 1
        ret = model.stripped[tokens[ret_start].start:tokens[back].start] \
            if ret_start < back else ""
        body_open = j
        body_close = _match_group(tokens, body_open, "{", "}")
        fn = Function(
            name=name,
            line=model.line_of(tokens[i - 1].start),
            ret=ret.strip(),
            params=model.stripped[tokens[i].start + 1:tokens[close].start],
            body_start=tokens[body_open].start + 1,
            body_end=tokens[body_close].start,
        )
        _find_loops_and_lambdas(model, fn, tokens, body_open, body_close)
        model.functions.append(fn)
        i = close + 1  # nested lambdas are captured per-function


def _find_loops_and_lambdas(model: SourceModel, fn: Function,
                            tokens: list[Token], body_open: int,
                            body_close: int) -> None:
    depth_stack: list[int] = []
    j = body_open + 1
    while j < body_close:
        t = tokens[j].text
        if t == "{":
            depth_stack.append(j)
        elif t == "}":
            if depth_stack:
                depth_stack.pop()
        elif t in ("for", "while") and j + 1 < body_close and \
                tokens[j + 1].text == "(":
            hdr_close = _match_group(tokens, j + 1, "(", ")")
            header = model.stripped[tokens[j + 1].start + 1:
                                    tokens[hdr_close].start]
            kind = t
            if t == "for" and _has_toplevel_colon(tokens, j + 1, hdr_close):
                kind = "range-for"
            b = hdr_close + 1
            if b < body_close and tokens[b].text == "{":
                b_close = _match_group(tokens, b, "{", "}")
                start, end = tokens[b].start + 1, tokens[b_close].start
            else:  # single-statement body
                e = b
                while e < body_close and tokens[e].text != ";":
                    if tokens[e].text == "{":
                        e = _match_group(tokens, e, "{", "}")
                    elif tokens[e].text == "(":
                        e = _match_group(tokens, e, "(", ")")
                    e += 1
                start = tokens[b].start if b < body_close else tokens[j].start
                end = tokens[min(e, body_close)].start
            fn.loops.append(Loop(kind=kind, line=model.line_of(tokens[j].start),
                                 header=header, body_start=start,
                                 body_end=end, depth=len(depth_stack)))
        elif t == "do" and j + 1 < body_close and tokens[j + 1].text == "{":
            b_close = _match_group(tokens, j + 1, "{", "}")
            fn.loops.append(Loop(kind="do",
                                 line=model.line_of(tokens[j].start),
                                 header="",
                                 body_start=tokens[j + 1].start + 1,
                                 body_end=tokens[b_close].start,
                                 depth=len(depth_stack)))
        elif t == "[" and _looks_like_lambda(tokens, j, body_close):
            cap_close = _match_group(tokens, j, "[", "]")
            b = cap_close + 1
            if b < body_close and tokens[b].text == "(":
                b = _match_group(tokens, b, "(", ")") + 1
            while b < body_close and tokens[b].text in (
                    "mutable", "noexcept", "constexpr", "->"):
                if tokens[b].text == "->":
                    while b < body_close and tokens[b].text != "{":
                        b += 1
                    break
                b += 1
            if b < body_close and tokens[b].text == "{":
                b_close = _match_group(tokens, b, "{", "}")
                target = ""
                if j >= 2 and tokens[j - 1].text == "(" and \
                        re.fullmatch(r"[A-Za-z_]\w*", tokens[j - 2].text):
                    target = tokens[j - 2].text
                elif j >= 2 and tokens[j - 1].text == ",":
                    # lambda as a later argument: walk back to the call
                    depth = 1
                    k = j - 1
                    while k >= 1 and depth > 0:
                        k -= 1
                        if tokens[k].text == ")":
                            depth += 1
                        elif tokens[k].text == "(":
                            depth -= 1
                    if k >= 1 and re.fullmatch(r"[A-Za-z_]\w*",
                                               tokens[k - 1].text):
                        target = tokens[k - 1].text
                fn.lambdas.append(Lambda(
                    line=model.line_of(tokens[j].start),
                    capture=model.stripped[tokens[j].start + 1:
                                           tokens[cap_close].start],
                    body_start=tokens[b].start + 1,
                    body_end=tokens[b_close].start,
                    call_target=target))
        j += 1


def _has_toplevel_colon(tokens: list[Token], open_idx: int,
                        close_idx: int) -> bool:
    depth = 0
    for j in range(open_idx + 1, close_idx):
        t = tokens[j].text
        if t in "([<{":
            depth += 1
        elif t in ")]>}":
            depth -= 1
        elif t == ":" and depth == 0:
            return True
    return False


def _looks_like_lambda(tokens: list[Token], j: int, limit: int) -> bool:
    """`[` starts a lambda if it isn't an index/attribute: preceded by
    an operator/separator/keyword rather than a value, and not `[[`."""
    if j + 1 < limit and tokens[j + 1].text == "[":
        return False
    if j == 0:
        return False
    prev = tokens[j - 1].text
    if re.fullmatch(r"[A-Za-z_]\w*", prev) and prev not in (
            "return", "co_return", "co_await", "case", "else", "do"):
        return False  # identifier[...] is an index
    return prev not in ("]", ")", "}")


def _find_classes(model: SourceModel, tokens: list[Token]) -> None:
    n = len(tokens)
    i = 0
    while i < n:
        if tokens[i].text not in ("class", "struct"):
            i += 1
            continue
        # `enum class` is not a class; `class X;` is a forward decl.
        if i >= 1 and tokens[i - 1].text == "enum":
            i += 1
            continue
        j = i + 1
        # Skip attribute macros like DV_CAPABILITY("mutex").
        while j < n and tokens[j].text in _ANNOTATION_MACROS:
            j += 1
            if j < n and tokens[j].text == "(":
                j = _match_group(tokens, j, "(", ")") + 1
        if j >= n or not re.fullmatch(r"[A-Za-z_]\w*", tokens[j].text):
            i += 1
            continue
        name_idx = j
        name = tokens[j].text
        j += 1
        # Qualified definition (`struct Tracer::Impl { ... }`): the last
        # segment names the class.
        while j + 1 < n and tokens[j].text == "::" and \
                re.fullmatch(r"[A-Za-z_]\w*", tokens[j + 1].text):
            name_idx = j + 1
            name = tokens[j + 1].text
            j += 2
        while j < n and tokens[j].text in _ANNOTATION_MACROS:
            j += 1
            if j < n and tokens[j].text == "(":
                j = _match_group(tokens, j, "(", ")") + 1
        if j < n and tokens[j].text == ":":  # base clause
            while j < n and tokens[j].text != "{":
                j += 1
        if j >= n or tokens[j].text != "{":
            i += 1
            continue
        body_open = j
        body_close = _match_group(tokens, body_open, "{", "}")
        cls = ClassDef(name=name, kind=tokens[i].text,
                       line=model.line_of(tokens[name_idx].start))
        _find_members(model, cls, tokens, body_open, body_close)
        model.classes.append(cls)
        i = body_open + 1  # nested classes get their own pass


_MEMBER_SKIP_STARTERS = {
    "public", "private", "protected", "using", "typedef", "friend",
    "static_assert", "template", "enum", "class", "struct",
}


def _find_members(model: SourceModel, cls: ClassDef, tokens: list[Token],
                  body_open: int, body_close: int) -> None:
    """Data members: depth-1 statements ending in `;` that, once the
    initializer and annotation macros are stripped, end with an
    identifier (the member name) and contain no top-level parens."""
    j = body_open + 1
    stmt_start = j
    while j < body_close:
        t = tokens[j].text
        if t in ("{",):
            j = _match_group(tokens, j, "{", "}")
            # `Type name{init};` keeps going; function bodies end stmts.
            if j + 1 < body_close and tokens[j + 1].text == ";":
                j += 1
                _classify_member(model, cls, tokens, stmt_start, j)
                stmt_start = j + 1
            else:
                stmt_start = j + 1
        elif t == "(":
            j = _match_group(tokens, j, "(", ")")
        elif t == ":" and j > stmt_start and tokens[j - 1].text in (
                "public", "private", "protected"):
            stmt_start = j + 1
        elif t == ";":
            _classify_member(model, cls, tokens, stmt_start, j)
            stmt_start = j + 1
        j += 1


def _classify_member(model: SourceModel, cls: ClassDef, tokens: list[Token],
                     start: int, end: int) -> None:
    stmt = tokens[start:end]
    if not stmt:
        return
    if stmt[0].text in _MEMBER_SKIP_STARTERS:
        return
    if any(t.text == "operator" for t in stmt):
        return  # operator overload declaration
    # Strip a trailing `= init` / `{init}`.
    cut = len(stmt)
    depth = 0
    for idx, tok in enumerate(stmt):
        t = tok.text
        if t in "([{":
            depth += 1
        elif t in ")]}":
            depth -= 1
        elif t == "=" and depth == 0:
            cut = idx
            break
    core = stmt[:cut]
    if core and core[-1].text == "}":
        # brace init: drop the {...} group
        d = 0
        for idx in range(len(core) - 1, -1, -1):
            if core[idx].text == "}":
                d += 1
            elif core[idx].text == "{":
                d -= 1
                if d == 0:
                    core = core[:idx]
                    break
    # Strip trailing annotation macro invocations.
    changed = True
    while changed and core:
        changed = False
        if core[-1].text == ")":
            d = 0
            for idx in range(len(core) - 1, -1, -1):
                if core[idx].text == ")":
                    d += 1
                elif core[idx].text == "(":
                    d -= 1
                    if d == 0:
                        if idx >= 1 and core[idx - 1].text in \
                                _ANNOTATION_MACROS:
                            core = core[:idx - 1]
                            changed = True
                        break
    if not core:
        return
    last = core[-1]
    if not re.fullmatch(r"[A-Za-z_]\w*", last.text):
        return  # function decl or operator — ends with ')' or similar
    if last.text in _ANNOTATION_MACROS or last.text in _CONTROL_KEYWORDS or \
            last.text in ("const", "volatile", "override", "final",
                          "mutable", "default", "delete", "noexcept"):
        return  # `int get() const;` and friends are function decls
    if len(core) == 1:
        return  # lone identifier: not a declaration
    # A top-level '(' before the name means a function declaration.
    d = 0
    for tok in core[:-1]:
        if tok.text == "(" and d == 0:
            return
        if tok.text in "([{<":
            d += 1
        elif tok.text in ")]}>":
            d -= 1
    decl_text = model.stripped[stmt[0].start:tokens[end].start]
    type_text = model.stripped[stmt[0].start:last.start]
    cls.members.append(Member(
        name=last.text,
        line=model.line_of(last.start),
        decl=re.sub(r"\s+", " ", decl_text).strip(),
        type_text=re.sub(r"\s+", " ", type_text).strip()))
