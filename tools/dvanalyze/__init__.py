"""dvanalyze: AST-grade semantic analyzer for the DarkVec C++ tree.

Checks the project invariants that line-oriented lint cannot see —
checkpoint coverage in long loops, DV_GUARDED_BY coverage of shared
fields, header-cap domination of stream-decoded allocations,
deterministic iteration into persisted formats, and the io:: error
taxonomy. Run as `python3 -m dvanalyze` from tools/, or via
scripts/analyze.sh.
"""

__version__ = "1.0"
