"""dvanalyze CLI.

Usage (from the repo root):

  python3 tools/dvanalyze --root .                 # scan the tree
  python3 tools/dvanalyze --self-test              # prove the rules
  python3 tools/dvanalyze --list-rules
  python3 tools/dvanalyze --root . --write-baseline

Exit codes: 0 clean (or findings exactly match the baseline), 1
findings (new findings / stale baseline entries / bad suppressions),
2 usage or environment errors.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

if __package__ in (None, ""):  # `python3 tools/dvanalyze` execution
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))
    from dvanalyze import clang_backend, engine, rules, selftest
else:
    from . import clang_backend, engine, rules, selftest


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="dvanalyze", description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=".",
                        help="repository root to scan (default: .)")
    parser.add_argument("--compdb", default=None,
                        help="compile_commands.json path (default: "
                             "<root>/build/compile_commands.json if present)")
    parser.add_argument("--backend", choices=("auto", "clang", "lite"),
                        default="auto",
                        help="frontend: libclang when available (auto), "
                             "force libclang (clang) or the built-in "
                             "structural parser (lite)")
    parser.add_argument("--rule", action="append", dest="only",
                        metavar="RULE", help="run only this rule "
                        "(repeatable)")
    parser.add_argument("--baseline", default=None,
                        help="baseline file (default: "
                             "tools/dvanalyze/baseline.json under --root "
                             "when present)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write the current findings as the baseline")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any committed baseline")
    parser.add_argument("--self-test", action="store_true",
                        help="seed one violation and one quiet twin per "
                             "rule and verify both behaviors")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--show-suppressed", action="store_true",
                        help="also print suppressed findings with reasons")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, check in rules.ALL_RULES.items():
            doc = " ".join((check.__doc__ or "").split()) or rule_id
            print(f"{rule_id}")
        return 0

    if args.self_test:
        return selftest.run(backend=args.backend)

    if args.only:
        unknown = set(args.only) - set(rules.ALL_RULES)
        if unknown:
            print(f"dvanalyze: unknown rule(s): {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 2

    root = pathlib.Path(args.root).resolve()
    if not root.is_dir():
        print(f"dvanalyze: no such root: {root}", file=sys.stderr)
        return 2
    compdb = pathlib.Path(args.compdb) if args.compdb else \
        root / "build" / "compile_commands.json"
    if not compdb.is_file():
        compdb = None

    try:
        result = engine.scan(root, compdb=compdb, backend=args.backend,
                             only=set(args.only) if args.only else None)
    except RuntimeError as err:
        print(f"dvanalyze: {err}", file=sys.stderr)
        return 2

    baseline_path = pathlib.Path(args.baseline) if args.baseline else \
        root / "tools" / "dvanalyze" / "baseline.json"

    if args.write_baseline:
        engine.write_baseline(baseline_path, result.findings)
        print(f"dvanalyze: wrote {len(result.findings)} finding(s) to "
              f"{baseline_path}")
        return 0

    if args.show_suppressed:
        for f, reason in result.suppressed:
            print(f"{f.render()}  [suppressed: {reason}]")

    failures = 0
    to_report = result.findings
    if not args.no_baseline and baseline_path.is_file():
        try:
            baseline = engine.load_baseline(baseline_path)
        except (OSError, ValueError) as err:
            print(f"dvanalyze: bad baseline: {err}", file=sys.stderr)
            return 2
        new, stale = engine.diff_baseline(result.findings, baseline)
        to_report = new
        for entry in stale:
            print(f"{entry['file']}:{entry['line']}: [stale-baseline] "
                  f"baseline entry for rule '{entry['rule']}' matches no "
                  "finding; refresh with --write-baseline")
            failures += 1

    for f in to_report:
        print(f.render())
        failures += 1
    for f in result.meta_findings:
        print(f.render())
        failures += 1

    summary = (f"dvanalyze: {result.files_scanned} files, "
               f"{result.backend} backend, "
               f"{len(result.findings)} finding(s), "
               f"{len(result.suppressed)} suppressed")
    if failures:
        print(f"{summary}, {failures} failure(s)", file=sys.stderr)
        return 1
    print(summary)
    return 0


if __name__ == "__main__":
    sys.exit(main())
