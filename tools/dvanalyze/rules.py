"""dvanalyze rule catalogue.

Five semantic rules that regex-level lint cannot express — each needs
function/loop/class structure from the source model:

  checkpoint-coverage      long-running code in src/{ml,w2v,graph} and
                           src/core/streaming.cpp that participates in
                           the RunContext protocol must poll it in every
                           top-level data-scaled long-running loop
                           (while-loops and nested-loop for-loops; flat
                           bookkeeping passes are per-element and stay
                           poll-free), and entry points
                           (train/fit/build/run_*) must participate.
  guarded-field            a class owning a core::Mutex declares its
                           intent to be shared: every non-const,
                           non-atomic data member must carry
                           DV_GUARDED_BY (or an explicit dv-benign-race
                           comment) so Clang's -Wthread-safety can see
                           every access.
  reader-cap               a size decoded from a stream must be checked
                           against a cap before it reaches .resize() /
                           .reserve() — PR 3's header-cap discipline as
                           a structural rule, so no new reader can
                           reintroduce an allocation bomb.
  deterministic-iteration  range-for over an unordered container inside
                           a function that persists or exposes data
                           (checkpoints, on-disk formats, JSON /
                           Prometheus) is nondeterministic output; the
                           flatten-then-sort idiom is recognized and
                           stays quiet.
  io-error-taxonomy        functions inside the IoPolicy/IoReport
                           contract must throw the io:: taxonomy, never
                           raw std:: exceptions, so strict/lenient
                           callers can keep catching io::IoError.

Every rule fires as a Finding(rule, path, line, message); suppression
and baselines are handled by the engine, not here.
"""

from __future__ import annotations

import dataclasses
import re

from . import cppmodel


@dataclasses.dataclass(frozen=True)
class Finding:
    rule: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


RULE_IDS = (
    "checkpoint-coverage",
    "guarded-field",
    "reader-cap",
    "deterministic-iteration",
    "io-error-taxonomy",
)


# --------------------------------------------------------------------------
# checkpoint-coverage

_CKPT_SCOPE_PREFIXES = ("src/ml/", "src/w2v/", "src/graph/")
_CKPT_SCOPE_FILES = ("src/core/streaming.cpp",)

_PARTICIPATES_RE = re.compile(
    r"\bRunContext\b|\bruntime\s*::\s*current\b|\bDV_CHECK_CANCEL\b"
    r"|\bDV_CHECKPOINT\b|\bTrainControl\b|\bRunControl\b")
_POLL_RE = re.compile(
    r"\bDV_CHECKPOINT\b|\bDV_CHECK_CANCEL\b|(?:->|\.)\s*check\s*\("
    r"|\bcheckpoint\s*\(|\bshould_stop\b|\bstop_reason\b"
    r"|\bparallel_for\b|\bfor_each_chunk\b|\bwith_retry\b")
# Loop bounds that scale with the data (senders/rows/pairs/windows), as
# opposed to per-element dimension loops, which the cost contract keeps
# poll-free ("tile/epoch/window granularity, never per element").
_DATA_SCALED_RE = re.compile(
    r"\.size\s*\(\)|\bn\b|\brows?\b|\bsenders\b|\bepochs?\b|\bwindows?\b"
    r"|\bqueries\b|\bcells\b|\bpairs\b|\bdone\b|\bremaining\b|\bcount\b"
    r"|\bnum_\w+|\bn_\w+|\bvocab\w*|\btotal\w*")
# Whole-operation entry points only: per-element kernels (train_pair,
# build_huffman_tree, ...) are poll-free by the cost contract.
_ENTRY_POINT_RE = re.compile(r"^(?:train|fit|build|cluster)$|^run_\w+$")


def _is_long_running(lp: cppmodel.Loop,
                     fn: cppmodel.Function) -> bool:
    """A loop worth polling: unbounded `while`, or a `for` whose body
    contains nested loops (O(n*m) work). Flat O(n) bookkeeping passes
    are per-element by the cost contract and stay poll-free."""
    if lp.kind == "while":
        return True
    return any(other.depth > lp.depth and
               lp.body_start < other.body_start < lp.body_end
               for other in fn.loops)


def check_checkpoint_coverage(model: cppmodel.SourceModel) -> list[Finding]:
    path = model.path
    if not (path.startswith(_CKPT_SCOPE_PREFIXES) or
            path in _CKPT_SCOPE_FILES):
        return []
    out: list[Finding] = []
    for fn in model.functions:
        body = model.body_text(fn.body_start, fn.body_end)
        participates = bool(
            _PARTICIPATES_RE.search(body) or _PARTICIPATES_RE.search(fn.params))
        scaled_loops = [
            lp for lp in fn.loops
            if lp.depth == 0 and lp.kind != "range-for" and
            _DATA_SCALED_RE.search(lp.header) and _is_long_running(lp, fn)
        ]
        if not participates:
            if _ENTRY_POINT_RE.match(fn.name) and scaled_loops:
                out.append(Finding(
                    "checkpoint-coverage", path, fn.line,
                    f"long-running entry point '{fn.name}' has data-scaled "
                    "loops but never consults RunContext "
                    "(DV_CHECKPOINT / DV_CHECK_CANCEL / runtime::current)"))
            continue
        for lp in scaled_loops:
            loop_text = lp.header + model.body_text(lp.body_start, lp.body_end)
            if not _POLL_RE.search(loop_text):
                out.append(Finding(
                    "checkpoint-coverage", path, lp.line,
                    f"data-scaled {lp.kind} loop in '{fn.name}' never "
                    "polls the RunContext it participates in; add "
                    "DV_CHECKPOINT/DV_CHECK_CANCEL at the iteration "
                    "boundary"))
    return out


# --------------------------------------------------------------------------
# guarded-field

_MUTEX_TYPE_RE = re.compile(r"\bcore\s*::\s*Mutex\b|(?<!\w)Mutex\b")
_FIELD_EXEMPT_TYPE_RE = re.compile(
    r"\bstd::atomic\b|\bstd::once_flag\b|\bCondVar\b|\bMutex\b"
    r"|\bstd::mutex\b|\bstd::condition_variable\b|\bstd::shared_mutex\b"
    r"|\bconstexpr\b|\bstatic\b")
_CONST_PREFIX_RE = re.compile(r"(?:^|\s)const\s")


def check_guarded_field(model: cppmodel.SourceModel) -> list[Finding]:
    out: list[Finding] = []
    benign = model.benign_race_lines()
    for cls in model.classes:
        if not any(_MUTEX_TYPE_RE.search(m.type_text) for m in cls.members):
            continue
        for m in cls.members:
            if _MUTEX_TYPE_RE.search(m.type_text):
                continue
            if _FIELD_EXEMPT_TYPE_RE.search(m.type_text):
                continue
            if _CONST_PREFIX_RE.search(" " + m.type_text):
                continue
            if "DV_GUARDED_BY" in m.decl or "DV_PT_GUARDED_BY" in m.decl:
                continue
            if m.line in benign or (m.line - 1) in benign:
                continue
            out.append(Finding(
                "guarded-field", model.path, m.line,
                f"field '{m.name}' of mutex-owning {cls.kind} '{cls.name}' "
                "has no DV_GUARDED_BY annotation and no dv-benign-race "
                "justification; the thread-safety analysis cannot see it"))
    return out


# --------------------------------------------------------------------------
# reader-cap

_READ_POD_RE = re.compile(r"\bread_pod\s*\(\s*[^,]+,\s*[&*]?\s*([\w.>\-]+)\s*\)")
_RESIZE_RE = re.compile(r"[\w\]>]\s*(?:\.|->)\s*(resize|reserve)\s*\(")
_GUARD_HEAD_RE = re.compile(r"\b(?:if|DV_PRECONDITION|DV_PRE|while)\s*\(")


def _paren_span(text: str, open_idx: int) -> int:
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i
    return len(text)


def check_reader_cap(model: cppmodel.SourceModel) -> list[Finding]:
    out: list[Finding] = []
    for fn in model.functions:
        body = model.body_text(fn.body_start, fn.body_end)
        decoded: dict[str, int] = {}
        for m in _READ_POD_RE.finditer(body):
            var = m.group(1).split(".")[-1].split("->")[-1]
            decoded.setdefault(var, m.start())
        if not decoded:
            continue
        # Guard spans: if(...) / DV_PRECONDITION(...) argument extents.
        guards: list[tuple[int, str]] = []
        for g in _GUARD_HEAD_RE.finditer(body):
            open_idx = body.index("(", g.start())
            close_idx = _paren_span(body, open_idx)
            guards.append((g.start(), body[open_idx:close_idx + 1]))
        for rm in _RESIZE_RE.finditer(body):
            open_idx = body.index("(", rm.end() - 1)
            close_idx = _paren_span(body, open_idx)
            arg = body[open_idx + 1:close_idx]
            hit = next((v for v, first in decoded.items()
                        if first < rm.start() and
                        re.search(rf"\b{re.escape(v)}\b", arg)), None)
            if hit is None:
                continue
            if "std::min" in arg or "min<" in arg:
                continue  # clamped at the call site
            guarded = any(
                pos < rm.start() and
                re.search(rf"\b{re.escape(hit)}\b", args) and
                re.search(r"[<>]", args)
                for pos, args in guards)
            if guarded:
                continue
            line = model.line_of(fn.body_start + rm.start())
            out.append(Finding(
                "reader-cap", model.path, line,
                f"{rm.group(1)}() sized by '{hit}', which was decoded from "
                "the stream, with no dominating cap check; compare it "
                "against IoLimits (or clamp via std::min) before allocating"))
    return out


# --------------------------------------------------------------------------
# deterministic-iteration

_UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set)\s*<[^;{}()]*?>(?:\s*[&*])?\s+(\w+)")
_PERSIST_RE = re.compile(
    r"\bwrite_pod\s*\(|\bwrite_array\s*\(|\bsave_checkpoint\w*\s*\("
    r"|\.\s*save\s*\(|\bto_json\b|\bto_prometheus\b|\bjson_escape\b"
    r"|\bstd::ostream\b")
_COLLECT_RE = re.compile(r"\b(\w+)\s*\.\s*(?:push_back|emplace_back|insert)\s*\(")


def check_deterministic_iteration(
        model: cppmodel.SourceModel) -> list[Finding]:
    unordered = set(_UNORDERED_DECL_RE.findall(model.stripped))
    if not unordered:
        return []
    out: list[Finding] = []
    for fn in model.functions:
        body = model.body_text(fn.body_start, fn.body_end)
        if not (_PERSIST_RE.search(body) or _PERSIST_RE.search(fn.params)):
            continue
        for lp in fn.loops:
            if lp.kind != "range-for":
                continue
            after_colon = lp.header.split(":", 1)
            if len(after_colon) != 2:
                continue
            ids = re.findall(r"[A-Za-z_]\w*", after_colon[1])
            base = next((t for t in ids if t not in ("const", "auto", "std")),
                        "")
            if base not in unordered:
                continue
            # Flatten-then-sort idiom: the loop only collects into a
            # container that is sorted right after — deterministic.
            loop_body = model.body_text(lp.body_start, lp.body_end)
            collected = set(_COLLECT_RE.findall(loop_body))
            tail = model.body_text(lp.body_end, fn.body_end)
            sorted_after = any(
                re.search(rf"\bsort\s*\([^;]*\b{re.escape(c)}\b", tail) or
                re.search(rf"\bsort\s*\(\s*{re.escape(c)}\b", tail)
                for c in collected)
            if sorted_after:
                continue
            out.append(Finding(
                "deterministic-iteration", model.path, lp.line,
                f"range-for over unordered container '{base}' in "
                f"'{fn.name}', which persists or exposes data; iteration "
                "order leaks into the output — iterate a sorted view or "
                "flatten-then-sort"))
    return out


# --------------------------------------------------------------------------
# io-error-taxonomy

_THROW_STD_RE = re.compile(r"\bthrow\s+std\s*::\s*(\w+)")


def check_io_error_taxonomy(model: cppmodel.SourceModel) -> list[Finding]:
    out: list[Finding] = []
    for fn in model.functions:
        in_contract = ("IoReport" in fn.ret or "IoPolicy" in fn.params or
                       "IoReport" in fn.params)
        if not in_contract:
            continue
        body = model.body_text(fn.body_start, fn.body_end)
        for m in _THROW_STD_RE.finditer(body):
            line = model.line_of(fn.body_start + m.start())
            out.append(Finding(
                "io-error-taxonomy", model.path, line,
                f"'{fn.name}' is inside the IoPolicy/IoReport contract but "
                f"throws raw std::{m.group(1)}; throw the io:: taxonomy "
                "(ParseError/FormatError/TruncatedInput/ResourceLimit) so "
                "strict/lenient callers keep working"))
    return out


ALL_RULES = {
    "checkpoint-coverage": check_checkpoint_coverage,
    "guarded-field": check_guarded_field,
    "reader-cap": check_reader_cap,
    "deterministic-iteration": check_deterministic_iteration,
    "io-error-taxonomy": check_io_error_taxonomy,
}


def run_rules(model: cppmodel.SourceModel,
              only: set[str] | None = None) -> list[Finding]:
    out: list[Finding] = []
    for rule_id, check in ALL_RULES.items():
        if only is not None and rule_id not in only:
            continue
        out.extend(check(model))
    return sorted(out, key=lambda f: (f.path, f.line, f.rule))
