"""dvanalyze self-test: seeded violations and quiet twins.

Mirrors darkvec_lint's discipline at the semantic level: every rule is
proven twice — a seed file that must fire, and a clean twin of the same
shape that must stay quiet (the same loop with the poll added, the same
field with the annotation, ...). A third family checks the suppression
machinery: an inline dv-suppress with a reason silences the finding, a
reasonless one and an unused one are themselves findings.

The seeds are written into a temporary tree shaped like the repo (the
rules are path-scoped) and scanned with the normal engine.
"""

from __future__ import annotations

import pathlib
import tempfile

from . import engine

# (relative path, contents). Paths place each seed inside the rule's
# scope. Every `fire_*` file must produce >= 1 finding of its rule;
# every `quiet_*` file must produce none at all.
SEEDS: list[tuple[str, str]] = [
    # -- checkpoint-coverage ------------------------------------------------
    ("src/ml/fire_ckpt_loop.cpp", """
#include <cstddef>
namespace darkvec::runtime { struct RunContext { void check() const; }; }
void scan_all(const darkvec::runtime::RunContext* ctx, std::size_t n) {
  if (ctx != nullptr) ctx->check();
  for (std::size_t i = 0; i < n; ++i) {  // O(n*m) work, never polls
    for (std::size_t j = 0; j < n; ++j) {
      volatile int sink = static_cast<int>(i + j);
      (void)sink;
    }
  }
}
"""),
    ("src/ml/fire_ckpt_entry.cpp", """
#include <cstddef>
void run_epochs(std::size_t n) {  // entry point, no RunContext at all
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      volatile int sink = static_cast<int>(i + j);
      (void)sink;
    }
  }
}
"""),
    ("src/ml/quiet_ckpt.cpp", """
#include <cstddef>
namespace darkvec::runtime { struct RunContext { void check() const; }; }
#define DV_CHECK_CANCEL(ctx) \\
  do { if ((ctx) != nullptr) (ctx)->check(); } while (false)
void scan_all(const darkvec::runtime::RunContext* ctx, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    DV_CHECK_CANCEL(ctx);  // polled at row granularity
    for (std::size_t j = 0; j < n; ++j) {
      volatile int sink = static_cast<int>(i + j);
      (void)sink;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {  // flat bookkeeping: poll-free
    volatile int sink = static_cast<int>(i);
    (void)sink;
  }
  for (int d = 0; d < 8; ++d) {  // literal bound: not data-scaled
    volatile int sink = d;
    (void)sink;
  }
}
"""),
    # -- guarded-field ------------------------------------------------------
    ("include/darkvec/fire_guarded.hpp", """
#pragma once
namespace darkvec::core { class Mutex {}; }
#define DV_GUARDED_BY(x)
class Cache {
 public:
  int get() const;
 private:
  mutable darkvec::core::Mutex mu_;
  int hits_ = 0;  // written under mu_, but the analysis cannot see it
};
"""),
    ("include/darkvec/quiet_guarded.hpp", """
#pragma once
#include <atomic>
namespace darkvec::core { class Mutex {}; }
#define DV_GUARDED_BY(x)
class Cache {
 public:
  int get() const;
 private:
  mutable darkvec::core::Mutex mu_;
  int hits_ DV_GUARDED_BY(mu_) = 0;
  std::atomic<int> lookups_{0};      // atomics need no capability
  const int capacity_ = 128;         // immutable after construction
  // dv-benign-race: written once before the object is shared.
  int owner_tid_ = 0;
};
"""),
    # -- reader-cap ---------------------------------------------------------
    ("src/core/fire_reader_cap.cpp", """
#include <cstdint>
#include <istream>
#include <vector>
namespace io {
template <typename T> bool read_pod(std::istream& in, T& v);
}
void load_table(std::istream& in, std::vector<float>* out) {
  std::uint64_t n = 0;
  io::read_pod(in, n);
  out->resize(n);  // attacker-controlled allocation
}
"""),
    ("src/core/quiet_reader_cap.cpp", """
#include <algorithm>
#include <cstdint>
#include <istream>
#include <stdexcept>
#include <vector>
namespace io {
template <typename T> bool read_pod(std::istream& in, T& v);
}
void load_table(std::istream& in, std::vector<float>* out) {
  std::uint64_t n = 0;
  io::read_pod(in, n);
  if (n > (std::uint64_t{1} << 20)) {
    throw std::length_error("table count over cap");
  }
  out->resize(n);
}
void load_chunked(std::istream& in, std::vector<float>* out) {
  std::uint64_t n = 0;
  io::read_pod(in, n);
  out->reserve(std::min<std::uint64_t>(n, 4096));  // clamped reserve
}
"""),
    # -- deterministic-iteration -------------------------------------------
    ("src/core/fire_det_iter.cpp", """
#include <cstdint>
#include <ostream>
#include <unordered_map>
namespace io {
template <typename T> void write_pod(std::ostream& out, const T& v);
}
void save_counts(std::ostream& out,
                 const std::unordered_map<int, std::uint64_t>& counts) {
  for (const auto& [key, value] : counts) {  // hash order hits the disk
    io::write_pod(out, key);
    io::write_pod(out, value);
  }
}
"""),
    ("src/core/quiet_det_iter.cpp", """
#include <algorithm>
#include <cstdint>
#include <ostream>
#include <unordered_map>
#include <utility>
#include <vector>
namespace io {
template <typename T> void write_pod(std::ostream& out, const T& v);
}
void save_counts(std::ostream& out,
                 const std::unordered_map<int, std::uint64_t>& counts) {
  std::vector<std::pair<int, std::uint64_t>> flat;
  flat.reserve(counts.size());
  for (const auto& [key, value] : counts) {  // flatten-then-sort idiom
    flat.push_back({key, value});
  }
  std::sort(flat.begin(), flat.end());
  for (const auto& [key, value] : flat) {
    io::write_pod(out, key);
    io::write_pod(out, value);
  }
}
"""),
    # -- io-error-taxonomy --------------------------------------------------
    ("src/core/fire_io_taxonomy.cpp", """
#include <istream>
#include <stdexcept>
namespace io {
struct IoPolicy {};
struct IoReport { int records_read = 0; };
}
io::IoReport load_header(std::istream& in, const io::IoPolicy& policy) {
  (void)policy;
  if (!in.good()) {
    throw std::runtime_error("bad stream");  // escapes the taxonomy
  }
  return io::IoReport{};
}
"""),
    ("src/core/quiet_io_taxonomy.cpp", """
#include <istream>
#include <stdexcept>
namespace io {
struct IoPolicy {};
struct IoReport { int records_read = 0; };
struct FormatError : std::runtime_error {
  using std::runtime_error::runtime_error;
};
}
io::IoReport load_header(std::istream& in, const io::IoPolicy& policy) {
  (void)policy;
  if (!in.good()) {
    throw io::FormatError("bad stream");
  }
  return io::IoReport{};
}
void helper_outside_contract() {
  throw std::logic_error("not an IoPolicy function: out of scope");
}
"""),
    # -- suppression machinery ----------------------------------------------
    ("src/core/quiet_suppressed.cpp", """
#include <istream>
#include <stdexcept>
namespace io {
struct IoPolicy {};
struct IoReport { int records_read = 0; };
}
io::IoReport load_header(std::istream& in, const io::IoPolicy& policy) {
  (void)policy;
  if (!in.good()) {
    // dv-suppress(io-error-taxonomy): seed proving reasoned escapes work
    throw std::runtime_error("bad stream");
  }
  return io::IoReport{};
}
"""),
    ("src/core/fire_bad_suppression.cpp", """
#include <istream>
#include <stdexcept>
namespace io {
struct IoPolicy {};
struct IoReport { int records_read = 0; };
}
io::IoReport load_header(std::istream& in, const io::IoPolicy& policy) {
  (void)policy;
  if (!in.good()) {
    // dv-suppress(io-error-taxonomy)
    throw std::runtime_error("reasonless suppression must be rejected");
  }
  return io::IoReport{};
}
"""),
    ("src/core/fire_unused_suppression.cpp", """
// dv-suppress(reader-cap): nothing here reads anything
int answer() { return 42; }
"""),
]

_META_EXPECT = {
    "fire_bad_suppression.cpp": "bad-suppression",
    "fire_unused_suppression.cpp": "unused-suppression",
}


def run(backend: str = "auto") -> int:
    failures: list[str] = []
    with tempfile.TemporaryDirectory(prefix="dvanalyze_selftest_") as tmp:
        root = pathlib.Path(tmp)
        for rel, content in SEEDS:
            p = root / rel
            p.parent.mkdir(parents=True, exist_ok=True)
            p.write_text(content.lstrip("\n"), encoding="utf-8")
        result = engine.scan(root, compdb=None, backend=backend)
        by_file: dict[str, set[str]] = {}
        for f in result.findings + result.meta_findings:
            by_file.setdefault(pathlib.Path(f.path).name, set()).add(f.rule)

        for rel, _ in SEEDS:
            name = pathlib.Path(rel).name
            fired = by_file.get(name, set())
            if name.startswith("fire_"):
                expected = _META_EXPECT.get(name)
                if expected is None:
                    # derive the rule id from the directory scope seed name
                    expected = {
                        "fire_ckpt_loop.cpp": "checkpoint-coverage",
                        "fire_ckpt_entry.cpp": "checkpoint-coverage",
                        "fire_guarded.hpp": "guarded-field",
                        "fire_reader_cap.cpp": "reader-cap",
                        "fire_det_iter.cpp": "deterministic-iteration",
                        "fire_io_taxonomy.cpp": "io-error-taxonomy",
                    }[name]
                if expected not in fired:
                    failures.append(
                        f"seed {name}: expected [{expected}] to fire, "
                        f"got {sorted(fired) or 'nothing'}")
            elif fired:
                failures.append(
                    f"quiet twin {name} produced findings: {sorted(fired)}")
        sup_names = {pathlib.Path(f.path).name
                     for f, _ in result.suppressed}
        if "quiet_suppressed.cpp" not in sup_names:
            failures.append(
                "quiet_suppressed.cpp: reasoned dv-suppress was not "
                "recorded as a suppression")

    if failures:
        for msg in failures:
            print(f"self-test FAIL: {msg}")
        return 1
    n_rules = len({r for _, r in _rule_expectations()})
    print(f"self-test OK ({result.backend} backend): {n_rules} rules fire "
          "on seeds, quiet twins are quiet, suppressions are honored and "
          "audited")
    return 0


def _rule_expectations() -> list[tuple[str, str]]:
    return [("seed", r) for r in (
        "checkpoint-coverage", "guarded-field", "reader-cap",
        "deterministic-iteration", "io-error-taxonomy")]
