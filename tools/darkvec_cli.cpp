// darkvec — command-line front end to the library.
//
//   darkvec simulate  --out DIR [--days N] [--scale S] [--seed X]
//   darkvec train     --trace FILE --out PREFIX [--services S] [--epochs N]
//                     [--dim V] [--window C] [--delta-t SECONDS]
//   darkvec classify  --trace FILE --labels FILE [--k K] [--services S]
//                     [--epochs N]
//   darkvec cluster   --trace FILE [--labels FILE] [--kprime K] [--epochs N]
//   darkvec neighbors --trace FILE --ip A.B.C.D [--k K] [--epochs N]
//   darkvec stream    --trace FILE [--window-days W] [--step-days S]
//                     [--kprime K] [--epochs N] [--no-align]
//
// Model health (obs/health.hpp):
//   --health-out FILE       write a health_report.json drift report.
//                           On `stream` every window is diffed against
//                           its predecessor; on train/cluster the single
//                           window is a baseline report.
//   --health-thresholds S   comma list of key=value alarm overrides
//                           (vocab-churn, membership-churn,
//                           centroid-drift, neighbor-overlap,
//                           alignment-residual, ewma-alpha, z, warmup,
//                           k, sample, min-cluster)
//   --no-health             stream only: skip health monitoring
//
// classify, cluster and neighbors also accept:
//   --ann                route k-NN queries through the IVF approximate
//                        index instead of the exact scan (sub-linear;
//                        recall traded via --nprobe)
//   --nprobe N           lists probed per query when --ann is set
//                        (default: the index's own operating point)
//
// Every trace-reading command also accepts:
//   --lenient            skip malformed trace records instead of aborting;
//                        a summary of skipped records goes to stderr
//   --error-budget N     lenient only: give up after N skipped records
//                        (default 10000)
//
// Execution control (every command):
//   --timeout SECONDS    cooperative wall-clock deadline; the run stops
//                        at the next checkpoint and exits 124
//   --checkpoint-dir DIR train/classify/cluster/neighbors: write a DVCK
//                        training checkpoint to DIR/sgns.ckpt every
//                        --checkpoint-every epochs (default 1)
//   --resume             load that checkpoint (when present and
//                        compatible) and continue training from it
//   SIGINT (^C) cancels cooperatively: the run stops at the next
//   checkpoint, metrics/trace files are still written, exit code 130.
//
// Observability (every command):
//   --log-level LEVEL    trace|debug|info|warn|error|off (default warn)
//   --log-json [FILE]    structured JSON-lines logs; to FILE when given,
//                        else to stderr (replaces the text format)
//   --metrics-out FILE   dump the metrics registry as JSON on exit
//   --metrics-prom FILE  same registry in Prometheus text exposition
//   --trace-out FILE     record spans; Chrome trace-event JSON on exit
//                        (load in Perfetto or chrome://tracing)
//   --simd LEVEL         off|scalar|avx2|avx512: force the SIMD kernel
//                        dispatch level (default: best the CPU supports;
//                        the DARKVEC_SIMD env var works the same way)
//
// Traces are the CSV format of net::write_csv / examples/export_dataset;
// label files are "src,class,group" CSVs. `train` writes PREFIX.emb
// (v2 binary embedding, CRC32 footer) and PREFIX.vocab (one sender
// address per row plus a #crc32 footer), atomically.
#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <unordered_map>

#include "darkvec/core/darkvec.hpp"
#include "darkvec/core/runtime/retry.hpp"
#include "darkvec/core/runtime/runtime.hpp"
#include "darkvec/core/inspector.hpp"
#include "darkvec/core/model_io.hpp"
#include "darkvec/core/semi_supervised.hpp"
#include "darkvec/core/simd/simd.hpp"
#include "darkvec/core/streaming.hpp"
#include "darkvec/ml/silhouette.hpp"
#include "darkvec/net/trace_binary.hpp"
#include "darkvec/net/trace_io.hpp"
#include "darkvec/obs/obs.hpp"
#include "darkvec/sim/scenario.hpp"
#include "darkvec/sim/simulator.hpp"

namespace {

using namespace darkvec;

/// The process-wide execution context every command runs under.
/// --timeout folds into its deadline; ^C cancels its token.
runtime::RunContext g_run_context;

/// SIGINT → cooperative cancel. CancellationToken::cancel() is one
/// relaxed atomic store, so this handler is async-signal-safe; the run
/// unwinds at its next checkpoint instead of dying mid-write.
extern "C" void handle_sigint(int /*signum*/) {
  g_run_context.token.cancel();
}

struct Args {
  std::unordered_map<std::string, std::string> values;

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback = "") const {
    const auto it = values.find(key);
    return it == values.end() ? fallback : it->second;
  }
  [[nodiscard]] double number(const std::string& key,
                              double fallback) const {
    const auto it = values.find(key);
    return it == values.end() ? fallback : std::atof(it->second.c_str());
  }
  [[nodiscard]] bool has(const std::string& key) const {
    return values.contains(key);
  }
};

Args parse_args(int argc, char** argv, int start) {
  Args args;
  for (int i = start; i < argc;) {
    if (std::strncmp(argv[i], "--", 2) != 0) break;
    // A key followed by another --key (or nothing) is a bare flag.
    // insert_or_assign with explicit std::string values sidesteps a GCC 12
    // -Wrestrict false positive on string::operator=(const char*).
    std::string key(argv[i] + 2);
    if (i + 1 >= argc || std::strncmp(argv[i + 1], "--", 2) == 0) {
      args.values.insert_or_assign(std::move(key), std::string("1"));
      i += 1;
    } else {
      args.values.insert_or_assign(std::move(key), std::string(argv[i + 1]));
      i += 2;
    }
  }
  return args;
}

ml::AnnSearchParams ann_from(const Args& args) {
  ml::AnnSearchParams params;
  params.enabled = args.has("ann");
  params.nprobe = static_cast<int>(args.number("nprobe", 0));
  return params;
}

io::IoPolicy policy_from(const Args& args) {
  io::IoPolicy policy;
  if (args.has("lenient")) {
    policy.mode = io::IoMode::kLenient;
    policy.error_budget =
        static_cast<std::size_t>(args.number("error-budget", 10000));
  }
  return policy;
}

/// Loads a trace by extension: .dvkt is the compact binary format,
/// anything else is CSV. In lenient mode, skipped records are summarized
/// on stderr.
net::Trace load_trace(const std::string& path, const Args& args) {
  const io::IoPolicy policy = policy_from(args);
  io::IoReport report;
  // Transient read failures (mid-rotation renames, blipping mounts) are
  // retried with jittered backoff; parse/format errors fail immediately.
  io::RetryPolicy retry = io::RetryPolicy::transient_reads();
  if (args.has("retries")) {
    retry.max_attempts = std::max(1, static_cast<int>(args.number(
                                         "retries", retry.max_attempts)));
  }
  net::Trace trace = io::with_retry(retry, [&] {
    report = io::IoReport{};
    if (path.size() > 5 && path.rfind(".dvkt") == path.size() - 5) {
      return net::read_binary_file(path, policy, &report);
    }
    return net::read_csv_file(path, policy, &report);
  });
  if (policy.lenient()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(),
                 report.summary().c_str());
  }
  return trace;
}

corpus::ServiceStrategy parse_services(const std::string& name) {
  if (name == "single") return corpus::ServiceStrategy::kSingle;
  if (name == "auto") return corpus::ServiceStrategy::kAuto;
  return corpus::ServiceStrategy::kDomain;
}

sim::LabelMap read_labels(const std::string& path, sim::GroupMap* groups) {
  sim::LabelMap labels;
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open labels file " + path);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || (line_no == 1 && line.rfind("src,", 0) == 0)) {
      continue;
    }
    std::stringstream row(line);
    std::string src, cls, group;
    std::getline(row, src, ',');
    std::getline(row, cls, ',');
    std::getline(row, group, ',');
    const auto ip = net::IPv4::parse(src);
    if (!ip) throw std::runtime_error("bad address in labels line " +
                                      std::to_string(line_no));
    const sim::GtClass parsed = sim::parse_gt_class(cls);
    if (parsed != sim::GtClass::kUnknown) labels[*ip] = parsed;
    if (groups && !group.empty()) (*groups)[*ip] = group;
  }
  return labels;
}

DarkVecConfig config_from(const Args& args) {
  DarkVecConfig config;
  config.services = parse_services(args.get("services", "domain"));
  config.w2v.epochs = static_cast<int>(args.number("epochs", 10));
  config.w2v.dim = static_cast<int>(args.number("dim", 50));
  config.w2v.window = static_cast<int>(args.number("window", 25));
  config.corpus.delta_t =
      static_cast<std::int64_t>(args.number("delta-t", 3600));
  config.corpus.min_packets =
      static_cast<std::size_t>(args.number("min-packets", 10));
  config.w2v.threads = static_cast<int>(args.number("threads", 1));
  if (args.has("checkpoint-dir")) {
    config.train.checkpoint_path =
        args.get("checkpoint-dir") + "/sgns.ckpt";
    config.train.checkpoint_every =
        static_cast<int>(args.number("checkpoint-every", 1));
    config.train.resume = args.has("resume");
  }
  return config;
}

DarkVec fit_from(const net::Trace& trace, const Args& args) {
  DarkVec dv(config_from(args));
  const auto stats = dv.fit(trace);
  std::fprintf(stderr,
               "trained %zu senders, %llu pairs, %.1fs (%s services)%s\n",
               dv.corpus().vocabulary_size(),
               static_cast<unsigned long long>(stats.pairs), stats.seconds,
               args.get("services", "domain").c_str(),
               stats.resumed ? " [resumed from checkpoint]" : "");
  return dv;
}

/// Parses --health-thresholds on top of the defaults; nullopt (after an
/// error message) when the spec is malformed.
std::optional<obs::HealthThresholds> health_thresholds_from(const Args& args) {
  obs::HealthThresholds thresholds;
  if (!args.has("health-thresholds")) return thresholds;
  const auto parsed =
      obs::HealthThresholds::parse(args.get("health-thresholds"), thresholds);
  if (!parsed) {
    std::fprintf(stderr,
                 "bad --health-thresholds (want key=value[,key=value...]; "
                 "keys: vocab-churn membership-churn centroid-drift "
                 "neighbor-overlap alignment-residual ewma-alpha z warmup "
                 "k sample min-cluster)\n");
  }
  return parsed;
}

/// One-shot baseline health report for train/cluster --health-out: the
/// whole trace is a single window, so the report carries the quality
/// signals (silhouette, modularity, partition) without drift.
void write_single_window_health(const std::string& path,
                                const net::Trace& trace, const DarkVec& dv,
                                const Clustering& clustering,
                                const obs::HealthThresholds& thresholds) {
  obs::HealthMonitor monitor(thresholds);
  obs::HealthInput input;
  input.window_start = trace.empty() ? 0 : trace[0].ts;
  input.window_end = trace.empty() ? 0 : trace[trace.size() - 1].ts;
  input.senders = dv.corpus().words;
  input.embedding = &dv.embedding();
  input.assignment = clustering.assignment;
  input.modularity = clustering.modularity;
  monitor.observe(input);
  monitor.write_report(path);
  std::fprintf(stderr, "wrote health report %s\n", path.c_str());
}

int cmd_simulate(const Args& args) {
  sim::SimConfig config;
  config.days = static_cast<int>(args.number("days", 30));
  config.scale = args.number("scale", 1.0);
  config.seed = static_cast<std::uint64_t>(args.number("seed", 2021));
  const sim::SimResult sim =
      sim::DarknetSimulator(config).run(sim::paper_scenario());
  const std::string dir = args.get("out", ".");
  net::write_csv_file(dir + "/darknet_trace.csv", sim.trace);
  std::ofstream labels(dir + "/ground_truth.csv");
  labels << "src,class,group\n";
  for (const auto& [ip, group] : sim.groups) {
    labels << ip.to_string() << ','
           << to_string(sim::label_of(sim.labels, ip)) << ',' << group
           << '\n';
  }
  std::printf("wrote %zu packets and %zu labels under %s\n",
              sim.trace.size(), sim.groups.size(), dir.c_str());
  return 0;
}

int cmd_train(const Args& args) {
  const net::Trace trace = load_trace(args.get("trace"), args);
  const DarkVec dv = fit_from(trace, args);
  const std::string prefix = args.get("out", "darkvec");
  save_model(prefix, SenderModel{dv.corpus().words, dv.embedding()});
  std::printf("wrote %s.emb and %s.vocab (%zu rows, dim %d)\n",
              prefix.c_str(), prefix.c_str(), dv.embedding().size(),
              dv.embedding().dim());
  if (args.has("health-out")) {
    const auto thresholds = health_thresholds_from(args);
    if (!thresholds) return 2;
    const int k_prime = static_cast<int>(args.number("kprime", 3));
    write_single_window_health(args.get("health-out"), trace, dv,
                               dv.cluster(k_prime), *thresholds);
  }
  return 0;
}

int cmd_classify(const Args& args) {
  const net::Trace trace = load_trace(args.get("trace"), args);
  const sim::LabelMap labels = read_labels(args.get("labels"), nullptr);
  const DarkVec dv = fit_from(trace, args);
  const auto eval_ips = last_day_active_senders(trace);
  const int k = static_cast<int>(args.number("k", 7));
  const auto eval = evaluate_knn(dv, labels, eval_ips, k, ann_from(args));
  std::printf("%d-NN leave-one-out accuracy %.3f, coverage %.1f%%\n\n", k,
              eval.accuracy, 100.0 * eval.coverage());
  std::printf("%-16s %9s %8s %8s %8s\n", "class", "precision", "recall",
              "f-score", "support");
  for (const sim::GtClass c : sim::kAllGtClasses) {
    const auto& s = eval.report.scores(static_cast<int>(c));
    std::printf("%-16s %9.2f %8.2f %8.2f %8zu\n",
                std::string(to_string(c)).c_str(), s.precision, s.recall,
                s.f1, s.support);
  }
  return 0;
}

int cmd_cluster(const Args& args) {
  const net::Trace trace = load_trace(args.get("trace"), args);
  sim::GroupMap groups;
  if (args.has("labels")) read_labels(args.get("labels"), &groups);
  const DarkVec dv = fit_from(trace, args);
  const int k_prime = static_cast<int>(args.number("kprime", 3));
  const Clustering clustering = dv.cluster(k_prime, 1, ann_from(args));
  const auto samples =
      ml::silhouette_samples(dv.embedding(), clustering.assignment);
  const auto clusters = inspect_clusters(trace, dv.corpus(),
                                         clustering.assignment, groups,
                                         samples);
  std::printf("%d clusters over the %d-NN graph, modularity %.3f\n\n",
              clustering.count, k_prime, clustering.modularity);
  std::printf("%-5s %6s %6s %5s %6s  %-20s %s\n", "id", "IPs", "ports",
              "/24s", "sil", "dominant group", "top ports");
  for (const ClusterInfo& cl : clusters) {
    if (cl.size() < 5) continue;
    std::string tops;
    for (std::size_t i = 0; i < std::min<std::size_t>(3, cl.top_ports.size());
         ++i) {
      char buf[48];
      std::snprintf(buf, sizeof(buf), "%s(%.0f%%) ",
                    cl.top_ports[i].first.to_string().c_str(),
                    100.0 * cl.top_ports[i].second);
      tops += buf;
    }
    char dominant[64] = "-";
    if (!cl.dominant_group.empty()) {
      std::snprintf(dominant, sizeof(dominant), "%s (%.0f%%)",
                    cl.dominant_group.c_str(),
                    100.0 * cl.dominant_fraction);
    }
    std::printf("C%-4d %6zu %6zu %5zu %6.2f  %-20s %s\n", cl.id, cl.size(),
                cl.ports.size(), cl.distinct_slash24, cl.silhouette,
                dominant, tops.c_str());
  }
  if (args.has("health-out")) {
    const auto thresholds = health_thresholds_from(args);
    if (!thresholds) return 2;
    write_single_window_health(args.get("health-out"), trace, dv, clustering,
                               *thresholds);
  }
  return 0;
}

int cmd_stream(const Args& args) {
  const net::Trace trace = load_trace(args.get("trace"), args);
  StreamingConfig config;
  config.darkvec = config_from(args);
  config.window_seconds = static_cast<std::int64_t>(
      args.number("window-days", 8) * net::kSecondsPerDay);
  config.step_seconds = static_cast<std::int64_t>(
      args.number("step-days", 4) * net::kSecondsPerDay);
  config.k_prime = static_cast<int>(args.number("kprime", 3));
  config.align = !args.has("no-align");
  config.health = !args.has("no-health");
  const auto thresholds = health_thresholds_from(args);
  if (!thresholds) return 2;
  config.health_thresholds = *thresholds;
  if (args.has("checkpoint-dir")) {
    config.checkpoint_path = args.get("checkpoint-dir") + "/stream.ckpt";
    config.resume = args.has("resume");
  }

  const StreamingResult result = run_streaming_monitored(trace, config);
  std::printf("%-12s %8s %8s %7s %7s %7s %6s\n", "window_end", "senders",
              "clusters", "churn", "overlap", "sil", "alerts");
  for (const obs::WindowHealth& w : result.health) {
    if (w.degraded) {
      std::printf("%-12lld degraded: %s\n",
                  static_cast<long long>(w.window_end),
                  w.degraded_reason.c_str());
      continue;
    }
    std::printf("%-12lld %8zu %8d %7.2f %7.2f %7.2f %6zu\n",
                static_cast<long long>(w.window_end), w.senders, w.clusters,
                w.vocab.churn(), w.neighbor_overlap, w.silhouette,
                w.alerts.size());
    for (const obs::HealthAlert& a : w.alerts) {
      std::printf("    ALERT [%s] %s\n", a.signal.c_str(), a.detail.c_str());
    }
  }
  if (!config.health) {
    std::printf("%zu snapshots (health monitoring off)\n",
                result.snapshots.size());
  }
  if (args.has("health-out")) {
    obs::write_health_report(args.get("health-out"), config.health_thresholds,
                             result.health);
    std::fprintf(stderr, "wrote health report %s\n",
                 args.get("health-out").c_str());
  }
  if (!result.completed) {
    std::fprintf(stderr, "stream stopped early: %s\n",
                 result.abort_reason.c_str());
    return 1;
  }
  return 0;
}

int cmd_neighbors(const Args& args) {
  const net::Trace trace = load_trace(args.get("trace"), args);
  const auto ip = net::IPv4::parse(args.get("ip"));
  if (!ip) {
    std::fprintf(stderr, "bad --ip\n");
    return 2;
  }
  const DarkVec dv = fit_from(trace, args);
  const auto index = dv.index_of(*ip);
  if (!index) {
    std::fprintf(stderr, "%s is not an active sender in this trace\n",
                 ip->to_string().c_str());
    return 1;
  }
  const int k = static_cast<int>(args.number("k", 10));
  std::printf("nearest neighbours of %s:\n", ip->to_string().c_str());
  for (const auto& nb : dv.knn().query(*index, k, ann_from(args))) {
    std::printf("  %-15s cosine %.4f\n",
                dv.corpus().words[nb.index].to_string().c_str(),
                nb.similarity);
  }
  return 0;
}

void usage() {
  std::fprintf(stderr,
               "usage: darkvec "
               "<simulate|train|classify|cluster|neighbors|stream> "
               "[--option value ...]\n"
               "model health: --health-out FILE --health-thresholds SPEC "
               "on train/cluster/stream; --no-health on stream\n"
               "observability: --log-level L --log-json [FILE] "
               "--metrics-out FILE --metrics-prom FILE --trace-out FILE\n"
               "kernels: --simd off|scalar|avx2|avx512 (default: best "
               "supported; DARKVEC_SIMD env var works too)\n"
               "approximate k-NN: --ann [--nprobe N] on classify, cluster "
               "and neighbors\n"
               "execution control: --timeout SECONDS --checkpoint-dir DIR "
               "--checkpoint-every N --resume; ^C cancels cooperatively "
               "(exit 130, timeout exit 124)\n"
               "see the header of tools/darkvec_cli.cpp for details\n");
}

/// Applies --log-level/--log-json and enables span recording when a
/// trace output was requested. Returns false on a bad flag value.
bool setup_obs(const Args& args) {
  if (args.has("log-level")) {
    const auto level = obs::parse_level(args.get("log-level"));
    if (!level) {
      std::fprintf(stderr, "bad --log-level (want trace|debug|info|warn|"
                           "error|off)\n");
      return false;
    }
    obs::logger().set_level(*level);
  }
  if (args.has("log-json")) {
    const std::string target = args.get("log-json");
    // Bare --log-json (parsed as "1") keeps stderr but in JSON lines.
    if (target == "1") {
      obs::logger().add_sink(std::make_unique<obs::JsonLinesSink>(std::cerr));
    } else {
      obs::logger().add_sink(std::make_unique<obs::JsonLinesSink>(target));
    }
  }
  if (args.has("trace-out")) obs::Tracer::instance().set_enabled(true);
  return true;
}

/// Applies --simd by forcing the kernel dispatch level. Returns false
/// when the value does not parse or names a level this CPU lacks.
bool setup_simd(const Args& args) {
  if (!args.has("simd")) return true;
  simd::Level level = simd::Level::kScalar;
  if (!simd::parse_level(args.get("simd"), &level)) {
    std::fprintf(stderr, "bad --simd (want off|scalar|avx2|avx512)\n");
    return false;
  }
  if (!simd::level_supported(level)) {
    std::fprintf(stderr, "--simd %s: not supported by this CPU\n",
                 simd::level_name(level));
    return false;
  }
  simd::force_level(level);
  return true;
}

/// Writes --metrics-out/--metrics-prom/--trace-out files after the
/// command body ran (also on command failure: partial runs still carry
/// useful counters).
void finish_obs(const Args& args) {
  if (args.has("metrics-out")) {
    std::ofstream out(args.get("metrics-out"));
    out << obs::registry().snapshot().to_json() << '\n';
    if (!out) {
      std::fprintf(stderr, "warning: cannot write --metrics-out %s\n",
                   args.get("metrics-out").c_str());
    }
  }
  if (args.has("metrics-prom")) {
    std::ofstream out(args.get("metrics-prom"));
    out << obs::registry().snapshot().to_prometheus();
    if (!out) {
      std::fprintf(stderr, "warning: cannot write --metrics-prom %s\n",
                   args.get("metrics-prom").c_str());
    }
  }
  if (args.has("trace-out")) {
    obs::Tracer::instance().write_chrome_trace_file(args.get("trace-out"));
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string command = argv[1];
  const Args args = parse_args(argc, argv, 2);
  if (!setup_obs(args)) return 2;
  if (!setup_simd(args)) return 2;

  if (args.has("timeout")) {
    g_run_context.budget.max_wall_seconds = args.number("timeout", 0);
    g_run_context.arm();
  }
  std::signal(SIGINT, handle_sigint);
  // Every command body (and the pool workers it fans out to) observes
  // the global context through this ambient scope.
  darkvec::runtime::ContextScope run_scope(&g_run_context);

  int rc = 2;
  bool known = true;
  try {
    if (command == "simulate") rc = cmd_simulate(args);
    else if (command == "train") rc = cmd_train(args);
    else if (command == "classify") rc = cmd_classify(args);
    else if (command == "cluster") rc = cmd_cluster(args);
    else if (command == "neighbors") rc = cmd_neighbors(args);
    else if (command == "stream") rc = cmd_stream(args);
    else known = false;
  } catch (const darkvec::runtime::Cancelled& e) {
    // 130 = died of SIGINT, the shell convention; metrics and trace
    // files below still flush so a cancelled run leaves evidence.
    std::fprintf(stderr, "interrupted: %s\n", e.what());
    rc = 130;
  } catch (const darkvec::runtime::Interrupted& e) {
    // Deadline or budget: 124, the timeout(1) convention.
    std::fprintf(stderr, "timed out: %s\n", e.what());
    rc = 124;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    rc = 1;
  }
  if (!known) {
    usage();
    return 2;
  }
  finish_obs(args);
  return rc;
}
