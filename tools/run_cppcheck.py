#!/usr/bin/env python3
"""Run cppcheck over the tree with the project's pinned suppressions.

Thin, deterministic wrapper so ctest, scripts/analyze.sh and CI all
invoke cppcheck identically:

  * scans src/, include/ and tools/ (C++ sources only)
  * --error-exitcode=1 so any unsuppressed finding fails the gate
  * suppressions live in scripts/cppcheck-suppressions.txt (committed,
    every entry justified) plus `// cppcheck-suppress` inline comments
  * exit 127 when cppcheck is not installed, which ctest maps to SKIP
    (SKIP_RETURN_CODE) and analyze.sh reports as a skipped leg

Usage: python3 tools/run_cppcheck.py [--root DIR] [--cppcheck BIN]
"""

from __future__ import annotations

import argparse
import pathlib
import shutil
import subprocess
import sys

SCAN_DIRS = ("src", "tools")
EXCLUDES = ("tools/dvanalyze",)  # python package, not C++


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=".", help="repo root (default: .)")
    parser.add_argument("--cppcheck", default="cppcheck",
                        help="cppcheck binary (default: from PATH)")
    args = parser.parse_args(argv)

    root = pathlib.Path(args.root).resolve()
    binary = shutil.which(args.cppcheck)
    if binary is None:
        print("run_cppcheck: cppcheck not installed; skipping (exit 127)")
        return 127

    suppressions = root / "scripts" / "cppcheck-suppressions.txt"
    cmd = [
        binary,
        "--std=c++20",
        "--language=c++",
        "--enable=warning,performance,portability",
        "--inline-suppr",
        "--error-exitcode=1",
        "--quiet",
        f"--suppressions-list={suppressions}",
        f"-I{root / 'include'}",
    ]
    cmd.extend(f"-i{root / pathlib.PurePosixPath(e)}" for e in EXCLUDES)
    cmd.extend(str(root / d) for d in SCAN_DIRS)

    print("run_cppcheck:", " ".join(cmd))
    proc = subprocess.run(cmd, cwd=root)
    if proc.returncode == 0:
        print("run_cppcheck: clean")
    return proc.returncode


if __name__ == "__main__":
    sys.exit(main())
