#!/usr/bin/env python3
"""darkvec_lint: repo-specific static rules for the DarkVec C++ tree.

Rules (each with a stable id used in the output):

  raw-assert       <assert>/assert() is compiled out under NDEBUG; use the
                   DV_PRECONDITION / DV_POSTCONDITION / DV_INVARIANT macros
                   from core/contracts.hpp (static_assert is fine).
  libc-random      rand()/srand()/time(nullptr) seeds are banned; all
                   randomness flows through the seeded std::mt19937_64
                   generators so runs stay reproducible.
  reinterpret-cast reinterpret_cast is confined to the blessed byte-IO
                   helpers (include/darkvec/core/byteio.hpp); everywhere
                   else use io::read_pod / io::write_pod, which memcpy.
  naked-mutex      raw std::mutex / std::condition_variable lack the
                   thread-safety annotations; use core::Mutex,
                   core::MutexLock and core::CondVar from
                   core/annotations.hpp.
  reader-io-policy a translation unit that opens std::ifstream must route
                   fault handling through io::IoPolicy so strict/lenient
                   behavior stays uniform across readers.
  raw-iostream     library code (src/ and include/ only) must not write
                   to std::cout/std::cerr/std::clog directly; route
                   diagnostics through obs::logger() (obs/log.hpp) so
                   output is leveled, structured, and capturable. Tools,
                   benches and examples own their stdout and are exempt.
  raw-intrinsics   x86 vector intrinsics (_mm*/__m128/__m256/__m512) are
                   confined to the kernel layer (core/simd/); everywhere
                   else call the runtime-dispatched simd::kernels() so
                   every consumer honours DARKVEC_SIMD and the scalar
                   parity oracle.
  raw-sleep        sleep calls (std::this_thread::sleep_for/until,
                   usleep, nanosleep) outside core/runtime build retry
                   and polling loops that cannot observe cancellation;
                   wait via runtime::interruptible_sleep and back off
                   via io::with_retry instead.
  metric-name-literal
                   obs::counter/gauge/histogram/series call sites must
                   reference a constant from obs::names
                   (obs/metric_names.hpp), never an ad-hoc string
                   literal: exposition names are an API surface, and the
                   central header is the reviewable registry of it.

Scanned roots: src/ include/ tools/ bench/ examples/ (tests are exempt:
they may exercise raw primitives on purpose). Findings are printed as
`path:line: [rule-id] message`; the exit code is 1 when anything fired,
0 on a clean tree. `--self-test` seeds one violation per rule in a
temporary tree and verifies every rule both fires and stays quiet on a
clean file.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys
import tempfile

SCAN_ROOTS = ("src", "include", "tools", "bench", "examples")
EXTENSIONS = {".cpp", ".hpp", ".h", ".cc", ".cxx"}

# Rules that match line-by-line on comment/string-stripped source.
# (id, regex, allowlist, message). Allowlist entries ending in "/" are
# directory prefixes; all others are exact repo-relative paths.
LINE_RULES = [
    (
        "raw-assert",
        re.compile(r"\bassert\s*\("),
        frozenset(),
        "raw assert() vanishes under NDEBUG; use DV_PRECONDITION/"
        "DV_POSTCONDITION/DV_INVARIANT (core/contracts.hpp)",
    ),
    (
        "libc-random",
        re.compile(r"\b(?:s?rand)\s*\(|\btime\s*\(\s*(?:nullptr|NULL|0)\s*\)"),
        frozenset(),
        "libc randomness breaks reproducibility; use the seeded "
        "std::mt19937_64 generators",
    ),
    (
        "reinterpret-cast",
        re.compile(r"\breinterpret_cast\b"),
        frozenset({"include/darkvec/core/byteio.hpp"}),
        "reinterpret_cast outside the blessed byte-IO helpers; use "
        "io::read_pod/io::write_pod (core/byteio.hpp)",
    ),
    (
        "naked-mutex",
        re.compile(r"\bstd::(?:mutex|condition_variable)\b"),
        frozenset({"include/darkvec/core/annotations.hpp"}),
        "raw std::mutex/std::condition_variable has no thread-safety "
        "annotations; use core::Mutex/core::MutexLock/core::CondVar "
        "(core/annotations.hpp)",
    ),
    (
        "raw-intrinsics",
        re.compile(r"\b(?:_mm\d*_\w+|__m\d+[id]?)\b"),
        frozenset({"src/core/simd/", "include/darkvec/core/simd/"}),
        "raw x86 intrinsics outside the kernel layer; call the "
        "runtime-dispatched simd::kernels() (core/simd/simd.hpp)",
    ),
    (
        "raw-sleep",
        re.compile(
            r"\bstd::this_thread::sleep_(?:for|until)\b"
            r"|\b(?:u|nano)?sleep\s*\("
        ),
        frozenset({"src/core/runtime/", "include/darkvec/core/runtime/"}),
        "raw sleep outside core/runtime cannot observe cancellation; "
        "wait via runtime::interruptible_sleep and back off via "
        "io::with_retry (core/runtime/)",
    ),
    (
        # Stripping removes string literals *including* the quotes, so a
        # metric call whose first argument was a literal is left with an
        # empty first argument: counter("x") -> counter(),
        # histogram("x", {1}) -> histogram(, {1}). A names:: constant
        # survives stripping and does not match.
        "metric-name-literal",
        re.compile(r"\b(?:counter|gauge|histogram|series)\s*\(\s*[,)]"),
        frozenset(),
        "ad-hoc metric-name string literal at a registration call site; "
        "add a constant to obs::names (obs/metric_names.hpp) and "
        "reference it — exposition names are an API",
    ),
]


def allowed(rel: str, allow: frozenset[str]) -> bool:
    """True when `rel` is allowlisted: an exact entry, or under a
    directory-prefix entry (those end with "/")."""
    return rel in allow or any(
        entry.endswith("/") and rel.startswith(entry) for entry in allow
    )

IFSTREAM_RE = re.compile(r"\bstd::ifstream\b")
IO_POLICY_RE = re.compile(r"\bIoPolicy\b")

# raw-iostream applies only under these roots; the logger's own sink
# implementation is the one sanctioned stderr writer.
RAW_IOSTREAM_RE = re.compile(r"\bstd::(?:cout|cerr|clog)\b")
RAW_IOSTREAM_ROOTS = ("src/", "include/")
RAW_IOSTREAM_ALLOW = frozenset({
    "include/darkvec/obs/log.hpp",
    "src/obs/log.cpp",
})


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving line
    structure so reported line numbers stay correct."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i = min(i + 2, n)
        elif c in "\"'":
            quote = c
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    i += 1
                elif text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def lint_file(path: pathlib.Path, rel: str) -> list[str]:
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as err:
        return [f"{rel}:0: [read-error] {err}"]
    stripped = strip_comments_and_strings(text)
    findings = []
    lines = stripped.splitlines()
    for lineno, line in enumerate(lines, start=1):
        for rule_id, pattern, allow, message in LINE_RULES:
            if allowed(rel, allow):
                continue
            if rule_id == "raw-assert" and "static_assert" in line:
                # \b already rejects static_assert; this guards lines
                # mixing both forms from confusing future regex edits.
                probe = line.replace("static_assert", "")
            else:
                probe = line
            if pattern.search(probe):
                findings.append(f"{rel}:{lineno}: [{rule_id}] {message}")
        if (
            rel.startswith(RAW_IOSTREAM_ROOTS)
            and rel not in RAW_IOSTREAM_ALLOW
            and RAW_IOSTREAM_RE.search(line)
        ):
            findings.append(
                f"{rel}:{lineno}: [raw-iostream] library code writes to "
                "std::cout/std::cerr directly; route diagnostics through "
                "obs::logger() (obs/log.hpp)"
            )
    if IFSTREAM_RE.search(stripped) and not IO_POLICY_RE.search(text):
        first = next(
            (no for no, line in enumerate(lines, 1) if IFSTREAM_RE.search(line)),
            1,
        )
        findings.append(
            f"{rel}:{first}: [reader-io-policy] std::ifstream reader does "
            "not reference io::IoPolicy; route fault handling through the "
            "policy (core/errors.hpp)"
        )
    return findings


def lint_tree(root: pathlib.Path) -> list[str]:
    findings = []
    for top in SCAN_ROOTS:
        base = root / top
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in EXTENSIONS and path.is_file():
                rel = path.relative_to(root).as_posix()
                findings.extend(lint_file(path, rel))
    return findings


SELF_TEST_SEEDS = {
    "raw-assert": "void f(int x) { assert(x > 0); }\n",
    "libc-random": "int f() { return rand(); }\n",
    "reinterpret-cast":
        "float f(const char* p) { return *reinterpret_cast<const float*>(p); }\n",
    "naked-mutex": "#include <mutex>\nstd::mutex mu;\n",
    "reader-io-policy":
        "#include <fstream>\nvoid f() { std::ifstream in(\"x\"); }\n",
    "raw-iostream":
        "#include <iostream>\nvoid f() { std::cerr << \"oops\\n\"; }\n",
    "raw-intrinsics":
        "#include <immintrin.h>\n"
        "__m256 f(__m256 a) { return _mm256_add_ps(a, a); }\n",
    "raw-sleep":
        "#include <thread>\n"
        "void f() {\n"
        "  std::this_thread::sleep_for(std::chrono::milliseconds(50));\n"
        "}\n",
    "metric-name-literal":
        "#include \"darkvec/obs/metrics.hpp\"\n"
        "void f() { darkvec::obs::counter(\"io.widgets\").add(1); }\n",
}

CLEAN_FILE = """\
#include <string>
// assert() mentioned in a comment must not fire, nor "rand()" here.
static_assert(sizeof(int) == 4, "ILP32/LP64 only");
const std::string s = "reinterpret_cast<std::mutex> in a string literal";
// The blessed wait is fine anywhere: "sleep" only fires as a call.
bool waited() { return darkvec::runtime::interruptible_sleep(0.1); }
// A counter("literal") in a comment must not fire metric-name-literal;
// a names:: constant at the call site is the sanctioned form.
void count_reads() {
  darkvec::obs::counter(darkvec::obs::names::kIoRecordsRead).add(1);
}
int answer() { return 42; }
"""


def self_test() -> int:
    failures = 0
    with tempfile.TemporaryDirectory(prefix="darkvec_lint_") as tmp:
        root = pathlib.Path(tmp)
        src = root / "src"
        src.mkdir()
        for rule_id, code in SELF_TEST_SEEDS.items():
            name = f"seed_{rule_id.replace('-', '_')}.cpp"
            (src / name).write_text(code, encoding="utf-8")
        (src / "clean.cpp").write_text(CLEAN_FILE, encoding="utf-8")
        # raw-iostream is scoped to library roots: the same std::cerr
        # that fires under src/ must stay quiet under tools/.
        tools = root / "tools"
        tools.mkdir()
        (tools / "exempt_iostream.cpp").write_text(
            SELF_TEST_SEEDS["raw-iostream"], encoding="utf-8")
        # raw-intrinsics allowlists the kernel directory by prefix: the
        # same intrinsics that fire under src/ must stay quiet there.
        kernel_dir = src / "core" / "simd"
        kernel_dir.mkdir(parents=True)
        (kernel_dir / "exempt_intrinsics.cpp").write_text(
            SELF_TEST_SEEDS["raw-intrinsics"], encoding="utf-8")
        # raw-sleep allowlists core/runtime by prefix: the one blessed
        # sleep (interruptible_sleep's slice wait) lives there.
        runtime_dir = src / "core" / "runtime"
        runtime_dir.mkdir(parents=True)
        (runtime_dir / "exempt_sleep.cpp").write_text(
            SELF_TEST_SEEDS["raw-sleep"], encoding="utf-8")

        findings = lint_tree(root)
        fired = {m.split("[", 1)[1].split("]", 1)[0] for m in findings}
        for rule_id in SELF_TEST_SEEDS:
            if rule_id not in fired:
                print(f"self-test FAIL: rule {rule_id} did not fire")
                failures += 1
        clean_hits = [m for m in findings if "clean.cpp" in m]
        if clean_hits:
            print("self-test FAIL: clean file produced findings:")
            for m in clean_hits:
                print(f"  {m}")
            failures += 1
        exempt_hits = [m for m in findings if "exempt_iostream.cpp" in m]
        if exempt_hits:
            print("self-test FAIL: raw-iostream fired outside src/include:")
            for m in exempt_hits:
                print(f"  {m}")
            failures += 1
        kernel_hits = [m for m in findings if "exempt_intrinsics.cpp" in m]
        if kernel_hits:
            print("self-test FAIL: raw-intrinsics fired inside core/simd/:")
            for m in kernel_hits:
                print(f"  {m}")
            failures += 1
        sleep_hits = [m for m in findings if "exempt_sleep.cpp" in m]
        if sleep_hits:
            print("self-test FAIL: raw-sleep fired inside core/runtime/:")
            for m in sleep_hits:
                print(f"  {m}")
            failures += 1
    if failures == 0:
        print(f"self-test OK: {len(SELF_TEST_SEEDS)} rules fire, "
              "clean file is quiet")
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root", default=".",
        help="repository root to scan (default: current directory)")
    parser.add_argument(
        "--self-test", action="store_true",
        help="verify every rule fires on a seeded violation and stays "
             "quiet on a clean file")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    root = pathlib.Path(args.root).resolve()
    findings = lint_tree(root)
    for finding in findings:
        print(finding)
    if findings:
        print(f"darkvec_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
