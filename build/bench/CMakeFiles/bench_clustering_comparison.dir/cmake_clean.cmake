file(REMOVE_RECURSE
  "CMakeFiles/bench_clustering_comparison.dir/bench_clustering_comparison.cpp.o"
  "CMakeFiles/bench_clustering_comparison.dir/bench_clustering_comparison.cpp.o.d"
  "bench_clustering_comparison"
  "bench_clustering_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_clustering_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
