file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_negatives.dir/bench_ablation_negatives.cpp.o"
  "CMakeFiles/bench_ablation_negatives.dir/bench_ablation_negatives.cpp.o.d"
  "bench_ablation_negatives"
  "bench_ablation_negatives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_negatives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
