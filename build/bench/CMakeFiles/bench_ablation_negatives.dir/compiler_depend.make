# Empty compiler generated dependencies file for bench_ablation_negatives.
# This may be replaced when dependencies are built.
