# Empty compiler generated dependencies file for bench_ablation_glove.
# This may be replaced when dependencies are built.
