file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_glove.dir/bench_ablation_glove.cpp.o"
  "CMakeFiles/bench_ablation_glove.dir/bench_ablation_glove.cpp.o.d"
  "bench_ablation_glove"
  "bench_ablation_glove.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_glove.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
