file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_perclass.dir/bench_table4_perclass.cpp.o"
  "CMakeFiles/bench_table4_perclass.dir/bench_table4_perclass.cpp.o.d"
  "bench_table4_perclass"
  "bench_table4_perclass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_perclass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
