file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_kprime.dir/bench_fig10_kprime.cpp.o"
  "CMakeFiles/bench_fig10_kprime.dir/bench_fig10_kprime.cpp.o.d"
  "bench_fig10_kprime"
  "bench_fig10_kprime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_kprime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
