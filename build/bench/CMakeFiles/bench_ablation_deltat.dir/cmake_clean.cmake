file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_deltat.dir/bench_ablation_deltat.cpp.o"
  "CMakeFiles/bench_ablation_deltat.dir/bench_ablation_deltat.cpp.o.d"
  "bench_ablation_deltat"
  "bench_ablation_deltat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_deltat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
