# Empty dependencies file for bench_ablation_deltat.
# This may be replaced when dependencies are built.
