file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_traceio.dir/bench_micro_traceio.cpp.o"
  "CMakeFiles/bench_micro_traceio.dir/bench_micro_traceio.cpp.o.d"
  "bench_micro_traceio"
  "bench_micro_traceio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_traceio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
