# Empty compiler generated dependencies file for bench_micro_traceio.
# This may be replaced when dependencies are built.
