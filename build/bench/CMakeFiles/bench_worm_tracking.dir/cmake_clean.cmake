file(REMOVE_RECURSE
  "CMakeFiles/bench_worm_tracking.dir/bench_worm_tracking.cpp.o"
  "CMakeFiles/bench_worm_tracking.dir/bench_worm_tracking.cpp.o.d"
  "bench_worm_tracking"
  "bench_worm_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_worm_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
