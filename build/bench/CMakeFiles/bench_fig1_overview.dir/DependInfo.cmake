
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig1_overview.cpp" "bench/CMakeFiles/bench_fig1_overview.dir/bench_fig1_overview.cpp.o" "gcc" "bench/CMakeFiles/bench_fig1_overview.dir/bench_fig1_overview.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/darkvec_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/darkvec_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/darkvec_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/darkvec_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/w2v/CMakeFiles/darkvec_w2v.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/darkvec_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/darkvec_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/darkvec_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
