file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_knn_k.dir/bench_fig7_knn_k.cpp.o"
  "CMakeFiles/bench_fig7_knn_k.dir/bench_fig7_knn_k.cpp.o.d"
  "bench_fig7_knn_k"
  "bench_fig7_knn_k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_knn_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
