file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_groundtruth.dir/bench_table2_groundtruth.cpp.o"
  "CMakeFiles/bench_table2_groundtruth.dir/bench_table2_groundtruth.cpp.o.d"
  "bench_table2_groundtruth"
  "bench_table2_groundtruth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_groundtruth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
