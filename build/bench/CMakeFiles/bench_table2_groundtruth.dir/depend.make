# Empty dependencies file for bench_table2_groundtruth.
# This may be replaced when dependencies are built.
