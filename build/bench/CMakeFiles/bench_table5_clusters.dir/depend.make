# Empty dependencies file for bench_table5_clusters.
# This may be replaced when dependencies are built.
