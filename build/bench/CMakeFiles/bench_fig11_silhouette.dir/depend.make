# Empty dependencies file for bench_fig11_silhouette.
# This may be replaced when dependencies are built.
