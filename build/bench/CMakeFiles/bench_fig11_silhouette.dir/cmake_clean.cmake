file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_silhouette.dir/bench_fig11_silhouette.cpp.o"
  "CMakeFiles/bench_fig11_silhouette.dir/bench_fig11_silhouette.cpp.o.d"
  "bench_fig11_silhouette"
  "bench_fig11_silhouette.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_silhouette.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
