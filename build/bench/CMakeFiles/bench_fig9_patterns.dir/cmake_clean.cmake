file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_patterns.dir/bench_fig9_patterns.cpp.o"
  "CMakeFiles/bench_fig9_patterns.dir/bench_fig9_patterns.cpp.o.d"
  "bench_fig9_patterns"
  "bench_fig9_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
