# Empty dependencies file for bench_table6_baseline.
# This may be replaced when dependencies are built.
