# Empty compiler generated dependencies file for bench_ablation_cbow.
# This may be replaced when dependencies are built.
