file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_cbow.dir/bench_ablation_cbow.cpp.o"
  "CMakeFiles/bench_ablation_cbow.dir/bench_ablation_cbow.cpp.o.d"
  "bench_ablation_cbow"
  "bench_ablation_cbow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cbow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
