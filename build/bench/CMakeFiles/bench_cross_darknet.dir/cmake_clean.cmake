file(REMOVE_RECURSE
  "CMakeFiles/bench_cross_darknet.dir/bench_cross_darknet.cpp.o"
  "CMakeFiles/bench_cross_darknet.dir/bench_cross_darknet.cpp.o.d"
  "bench_cross_darknet"
  "bench_cross_darknet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cross_darknet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
