# Empty compiler generated dependencies file for bench_cross_darknet.
# This may be replaced when dependencies are built.
