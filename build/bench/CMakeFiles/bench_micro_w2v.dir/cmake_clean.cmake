file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_w2v.dir/bench_micro_w2v.cpp.o"
  "CMakeFiles/bench_micro_w2v.dir/bench_micro_w2v.cpp.o.d"
  "bench_micro_w2v"
  "bench_micro_w2v.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_w2v.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
