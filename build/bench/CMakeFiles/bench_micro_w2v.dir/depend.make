# Empty dependencies file for bench_micro_w2v.
# This may be replaced when dependencies are built.
