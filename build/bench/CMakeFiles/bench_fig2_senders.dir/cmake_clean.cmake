file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_senders.dir/bench_fig2_senders.cpp.o"
  "CMakeFiles/bench_fig2_senders.dir/bench_fig2_senders.cpp.o.d"
  "bench_fig2_senders"
  "bench_fig2_senders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_senders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
