# Empty dependencies file for bench_fig2_senders.
# This may be replaced when dependencies are built.
