# Empty compiler generated dependencies file for bench_micro_louvain.
# This may be replaced when dependencies are built.
