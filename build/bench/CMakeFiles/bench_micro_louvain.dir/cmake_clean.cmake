file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_louvain.dir/bench_micro_louvain.cpp.o"
  "CMakeFiles/bench_micro_louvain.dir/bench_micro_louvain.cpp.o.d"
  "bench_micro_louvain"
  "bench_micro_louvain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_louvain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
