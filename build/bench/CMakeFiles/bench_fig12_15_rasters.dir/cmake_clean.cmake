file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_15_rasters.dir/bench_fig12_15_rasters.cpp.o"
  "CMakeFiles/bench_fig12_15_rasters.dir/bench_fig12_15_rasters.cpp.o.d"
  "bench_fig12_15_rasters"
  "bench_fig12_15_rasters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_15_rasters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
