# Empty dependencies file for darkvec_core.
# This may be replaced when dependencies are built.
