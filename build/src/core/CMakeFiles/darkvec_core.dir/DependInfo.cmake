
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/darkvec.cpp" "src/core/CMakeFiles/darkvec_core.dir/darkvec.cpp.o" "gcc" "src/core/CMakeFiles/darkvec_core.dir/darkvec.cpp.o.d"
  "/root/repo/src/core/inspector.cpp" "src/core/CMakeFiles/darkvec_core.dir/inspector.cpp.o" "gcc" "src/core/CMakeFiles/darkvec_core.dir/inspector.cpp.o.d"
  "/root/repo/src/core/model_io.cpp" "src/core/CMakeFiles/darkvec_core.dir/model_io.cpp.o" "gcc" "src/core/CMakeFiles/darkvec_core.dir/model_io.cpp.o.d"
  "/root/repo/src/core/raster.cpp" "src/core/CMakeFiles/darkvec_core.dir/raster.cpp.o" "gcc" "src/core/CMakeFiles/darkvec_core.dir/raster.cpp.o.d"
  "/root/repo/src/core/semi_supervised.cpp" "src/core/CMakeFiles/darkvec_core.dir/semi_supervised.cpp.o" "gcc" "src/core/CMakeFiles/darkvec_core.dir/semi_supervised.cpp.o.d"
  "/root/repo/src/core/streaming.cpp" "src/core/CMakeFiles/darkvec_core.dir/streaming.cpp.o" "gcc" "src/core/CMakeFiles/darkvec_core.dir/streaming.cpp.o.d"
  "/root/repo/src/core/transfer.cpp" "src/core/CMakeFiles/darkvec_core.dir/transfer.cpp.o" "gcc" "src/core/CMakeFiles/darkvec_core.dir/transfer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/corpus/CMakeFiles/darkvec_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/w2v/CMakeFiles/darkvec_w2v.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/darkvec_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/darkvec_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/darkvec_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/darkvec_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
