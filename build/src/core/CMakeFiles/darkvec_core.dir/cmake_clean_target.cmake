file(REMOVE_RECURSE
  "libdarkvec_core.a"
)
