file(REMOVE_RECURSE
  "CMakeFiles/darkvec_core.dir/darkvec.cpp.o"
  "CMakeFiles/darkvec_core.dir/darkvec.cpp.o.d"
  "CMakeFiles/darkvec_core.dir/inspector.cpp.o"
  "CMakeFiles/darkvec_core.dir/inspector.cpp.o.d"
  "CMakeFiles/darkvec_core.dir/model_io.cpp.o"
  "CMakeFiles/darkvec_core.dir/model_io.cpp.o.d"
  "CMakeFiles/darkvec_core.dir/raster.cpp.o"
  "CMakeFiles/darkvec_core.dir/raster.cpp.o.d"
  "CMakeFiles/darkvec_core.dir/semi_supervised.cpp.o"
  "CMakeFiles/darkvec_core.dir/semi_supervised.cpp.o.d"
  "CMakeFiles/darkvec_core.dir/streaming.cpp.o"
  "CMakeFiles/darkvec_core.dir/streaming.cpp.o.d"
  "CMakeFiles/darkvec_core.dir/transfer.cpp.o"
  "CMakeFiles/darkvec_core.dir/transfer.cpp.o.d"
  "libdarkvec_core.a"
  "libdarkvec_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/darkvec_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
