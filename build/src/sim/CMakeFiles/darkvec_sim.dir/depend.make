# Empty dependencies file for darkvec_sim.
# This may be replaced when dependencies are built.
