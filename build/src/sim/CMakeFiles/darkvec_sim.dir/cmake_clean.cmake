file(REMOVE_RECURSE
  "CMakeFiles/darkvec_sim.dir/address_space.cpp.o"
  "CMakeFiles/darkvec_sim.dir/address_space.cpp.o.d"
  "CMakeFiles/darkvec_sim.dir/honeypot.cpp.o"
  "CMakeFiles/darkvec_sim.dir/honeypot.cpp.o.d"
  "CMakeFiles/darkvec_sim.dir/labels.cpp.o"
  "CMakeFiles/darkvec_sim.dir/labels.cpp.o.d"
  "CMakeFiles/darkvec_sim.dir/ports.cpp.o"
  "CMakeFiles/darkvec_sim.dir/ports.cpp.o.d"
  "CMakeFiles/darkvec_sim.dir/scenario.cpp.o"
  "CMakeFiles/darkvec_sim.dir/scenario.cpp.o.d"
  "CMakeFiles/darkvec_sim.dir/simulator.cpp.o"
  "CMakeFiles/darkvec_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/darkvec_sim.dir/temporal.cpp.o"
  "CMakeFiles/darkvec_sim.dir/temporal.cpp.o.d"
  "CMakeFiles/darkvec_sim.dir/vantage.cpp.o"
  "CMakeFiles/darkvec_sim.dir/vantage.cpp.o.d"
  "libdarkvec_sim.a"
  "libdarkvec_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/darkvec_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
