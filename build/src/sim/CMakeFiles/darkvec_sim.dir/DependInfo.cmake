
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/address_space.cpp" "src/sim/CMakeFiles/darkvec_sim.dir/address_space.cpp.o" "gcc" "src/sim/CMakeFiles/darkvec_sim.dir/address_space.cpp.o.d"
  "/root/repo/src/sim/honeypot.cpp" "src/sim/CMakeFiles/darkvec_sim.dir/honeypot.cpp.o" "gcc" "src/sim/CMakeFiles/darkvec_sim.dir/honeypot.cpp.o.d"
  "/root/repo/src/sim/labels.cpp" "src/sim/CMakeFiles/darkvec_sim.dir/labels.cpp.o" "gcc" "src/sim/CMakeFiles/darkvec_sim.dir/labels.cpp.o.d"
  "/root/repo/src/sim/ports.cpp" "src/sim/CMakeFiles/darkvec_sim.dir/ports.cpp.o" "gcc" "src/sim/CMakeFiles/darkvec_sim.dir/ports.cpp.o.d"
  "/root/repo/src/sim/scenario.cpp" "src/sim/CMakeFiles/darkvec_sim.dir/scenario.cpp.o" "gcc" "src/sim/CMakeFiles/darkvec_sim.dir/scenario.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/sim/CMakeFiles/darkvec_sim.dir/simulator.cpp.o" "gcc" "src/sim/CMakeFiles/darkvec_sim.dir/simulator.cpp.o.d"
  "/root/repo/src/sim/temporal.cpp" "src/sim/CMakeFiles/darkvec_sim.dir/temporal.cpp.o" "gcc" "src/sim/CMakeFiles/darkvec_sim.dir/temporal.cpp.o.d"
  "/root/repo/src/sim/vantage.cpp" "src/sim/CMakeFiles/darkvec_sim.dir/vantage.cpp.o" "gcc" "src/sim/CMakeFiles/darkvec_sim.dir/vantage.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/darkvec_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
