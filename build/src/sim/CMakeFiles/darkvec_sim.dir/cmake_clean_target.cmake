file(REMOVE_RECURSE
  "libdarkvec_sim.a"
)
