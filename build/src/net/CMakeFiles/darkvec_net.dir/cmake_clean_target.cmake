file(REMOVE_RECURSE
  "libdarkvec_net.a"
)
