file(REMOVE_RECURSE
  "CMakeFiles/darkvec_net.dir/ipv4.cpp.o"
  "CMakeFiles/darkvec_net.dir/ipv4.cpp.o.d"
  "CMakeFiles/darkvec_net.dir/protocol.cpp.o"
  "CMakeFiles/darkvec_net.dir/protocol.cpp.o.d"
  "CMakeFiles/darkvec_net.dir/time.cpp.o"
  "CMakeFiles/darkvec_net.dir/time.cpp.o.d"
  "CMakeFiles/darkvec_net.dir/trace.cpp.o"
  "CMakeFiles/darkvec_net.dir/trace.cpp.o.d"
  "CMakeFiles/darkvec_net.dir/trace_binary.cpp.o"
  "CMakeFiles/darkvec_net.dir/trace_binary.cpp.o.d"
  "CMakeFiles/darkvec_net.dir/trace_io.cpp.o"
  "CMakeFiles/darkvec_net.dir/trace_io.cpp.o.d"
  "libdarkvec_net.a"
  "libdarkvec_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/darkvec_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
