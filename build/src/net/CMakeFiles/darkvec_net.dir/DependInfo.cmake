
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/ipv4.cpp" "src/net/CMakeFiles/darkvec_net.dir/ipv4.cpp.o" "gcc" "src/net/CMakeFiles/darkvec_net.dir/ipv4.cpp.o.d"
  "/root/repo/src/net/protocol.cpp" "src/net/CMakeFiles/darkvec_net.dir/protocol.cpp.o" "gcc" "src/net/CMakeFiles/darkvec_net.dir/protocol.cpp.o.d"
  "/root/repo/src/net/time.cpp" "src/net/CMakeFiles/darkvec_net.dir/time.cpp.o" "gcc" "src/net/CMakeFiles/darkvec_net.dir/time.cpp.o.d"
  "/root/repo/src/net/trace.cpp" "src/net/CMakeFiles/darkvec_net.dir/trace.cpp.o" "gcc" "src/net/CMakeFiles/darkvec_net.dir/trace.cpp.o.d"
  "/root/repo/src/net/trace_binary.cpp" "src/net/CMakeFiles/darkvec_net.dir/trace_binary.cpp.o" "gcc" "src/net/CMakeFiles/darkvec_net.dir/trace_binary.cpp.o.d"
  "/root/repo/src/net/trace_io.cpp" "src/net/CMakeFiles/darkvec_net.dir/trace_io.cpp.o" "gcc" "src/net/CMakeFiles/darkvec_net.dir/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
