# Empty dependencies file for darkvec_net.
# This may be replaced when dependencies are built.
