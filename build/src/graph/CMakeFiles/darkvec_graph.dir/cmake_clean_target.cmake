file(REMOVE_RECURSE
  "libdarkvec_graph.a"
)
