# Empty dependencies file for darkvec_graph.
# This may be replaced when dependencies are built.
