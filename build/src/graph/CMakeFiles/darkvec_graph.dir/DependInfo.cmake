
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/graph.cpp" "src/graph/CMakeFiles/darkvec_graph.dir/graph.cpp.o" "gcc" "src/graph/CMakeFiles/darkvec_graph.dir/graph.cpp.o.d"
  "/root/repo/src/graph/knn_graph.cpp" "src/graph/CMakeFiles/darkvec_graph.dir/knn_graph.cpp.o" "gcc" "src/graph/CMakeFiles/darkvec_graph.dir/knn_graph.cpp.o.d"
  "/root/repo/src/graph/louvain.cpp" "src/graph/CMakeFiles/darkvec_graph.dir/louvain.cpp.o" "gcc" "src/graph/CMakeFiles/darkvec_graph.dir/louvain.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ml/CMakeFiles/darkvec_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/w2v/CMakeFiles/darkvec_w2v.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
