file(REMOVE_RECURSE
  "CMakeFiles/darkvec_graph.dir/graph.cpp.o"
  "CMakeFiles/darkvec_graph.dir/graph.cpp.o.d"
  "CMakeFiles/darkvec_graph.dir/knn_graph.cpp.o"
  "CMakeFiles/darkvec_graph.dir/knn_graph.cpp.o.d"
  "CMakeFiles/darkvec_graph.dir/louvain.cpp.o"
  "CMakeFiles/darkvec_graph.dir/louvain.cpp.o.d"
  "libdarkvec_graph.a"
  "libdarkvec_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/darkvec_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
