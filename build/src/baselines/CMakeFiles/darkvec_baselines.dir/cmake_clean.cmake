file(REMOVE_RECURSE
  "CMakeFiles/darkvec_baselines.dir/dante.cpp.o"
  "CMakeFiles/darkvec_baselines.dir/dante.cpp.o.d"
  "CMakeFiles/darkvec_baselines.dir/ip2vec.cpp.o"
  "CMakeFiles/darkvec_baselines.dir/ip2vec.cpp.o.d"
  "CMakeFiles/darkvec_baselines.dir/port_features.cpp.o"
  "CMakeFiles/darkvec_baselines.dir/port_features.cpp.o.d"
  "libdarkvec_baselines.a"
  "libdarkvec_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/darkvec_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
