file(REMOVE_RECURSE
  "libdarkvec_baselines.a"
)
