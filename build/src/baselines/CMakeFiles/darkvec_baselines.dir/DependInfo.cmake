
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/dante.cpp" "src/baselines/CMakeFiles/darkvec_baselines.dir/dante.cpp.o" "gcc" "src/baselines/CMakeFiles/darkvec_baselines.dir/dante.cpp.o.d"
  "/root/repo/src/baselines/ip2vec.cpp" "src/baselines/CMakeFiles/darkvec_baselines.dir/ip2vec.cpp.o" "gcc" "src/baselines/CMakeFiles/darkvec_baselines.dir/ip2vec.cpp.o.d"
  "/root/repo/src/baselines/port_features.cpp" "src/baselines/CMakeFiles/darkvec_baselines.dir/port_features.cpp.o" "gcc" "src/baselines/CMakeFiles/darkvec_baselines.dir/port_features.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/w2v/CMakeFiles/darkvec_w2v.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/darkvec_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/darkvec_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
