# Empty compiler generated dependencies file for darkvec_baselines.
# This may be replaced when dependencies are built.
