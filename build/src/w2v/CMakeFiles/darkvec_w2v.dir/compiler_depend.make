# Empty compiler generated dependencies file for darkvec_w2v.
# This may be replaced when dependencies are built.
