file(REMOVE_RECURSE
  "CMakeFiles/darkvec_w2v.dir/embedding.cpp.o"
  "CMakeFiles/darkvec_w2v.dir/embedding.cpp.o.d"
  "CMakeFiles/darkvec_w2v.dir/glove.cpp.o"
  "CMakeFiles/darkvec_w2v.dir/glove.cpp.o.d"
  "CMakeFiles/darkvec_w2v.dir/skipgram.cpp.o"
  "CMakeFiles/darkvec_w2v.dir/skipgram.cpp.o.d"
  "libdarkvec_w2v.a"
  "libdarkvec_w2v.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/darkvec_w2v.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
