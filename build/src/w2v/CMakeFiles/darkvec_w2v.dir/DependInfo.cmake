
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/w2v/embedding.cpp" "src/w2v/CMakeFiles/darkvec_w2v.dir/embedding.cpp.o" "gcc" "src/w2v/CMakeFiles/darkvec_w2v.dir/embedding.cpp.o.d"
  "/root/repo/src/w2v/glove.cpp" "src/w2v/CMakeFiles/darkvec_w2v.dir/glove.cpp.o" "gcc" "src/w2v/CMakeFiles/darkvec_w2v.dir/glove.cpp.o.d"
  "/root/repo/src/w2v/skipgram.cpp" "src/w2v/CMakeFiles/darkvec_w2v.dir/skipgram.cpp.o" "gcc" "src/w2v/CMakeFiles/darkvec_w2v.dir/skipgram.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
