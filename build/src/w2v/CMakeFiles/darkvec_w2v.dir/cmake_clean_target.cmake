file(REMOVE_RECURSE
  "libdarkvec_w2v.a"
)
