file(REMOVE_RECURSE
  "CMakeFiles/darkvec_corpus.dir/corpus.cpp.o"
  "CMakeFiles/darkvec_corpus.dir/corpus.cpp.o.d"
  "CMakeFiles/darkvec_corpus.dir/service_map.cpp.o"
  "CMakeFiles/darkvec_corpus.dir/service_map.cpp.o.d"
  "libdarkvec_corpus.a"
  "libdarkvec_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/darkvec_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
