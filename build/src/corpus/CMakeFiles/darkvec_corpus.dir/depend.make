# Empty dependencies file for darkvec_corpus.
# This may be replaced when dependencies are built.
