file(REMOVE_RECURSE
  "libdarkvec_corpus.a"
)
