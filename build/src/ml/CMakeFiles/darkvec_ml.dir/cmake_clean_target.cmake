file(REMOVE_RECURSE
  "libdarkvec_ml.a"
)
