file(REMOVE_RECURSE
  "CMakeFiles/darkvec_ml.dir/dbscan.cpp.o"
  "CMakeFiles/darkvec_ml.dir/dbscan.cpp.o.d"
  "CMakeFiles/darkvec_ml.dir/evaluation.cpp.o"
  "CMakeFiles/darkvec_ml.dir/evaluation.cpp.o.d"
  "CMakeFiles/darkvec_ml.dir/hac.cpp.o"
  "CMakeFiles/darkvec_ml.dir/hac.cpp.o.d"
  "CMakeFiles/darkvec_ml.dir/kmeans.cpp.o"
  "CMakeFiles/darkvec_ml.dir/kmeans.cpp.o.d"
  "CMakeFiles/darkvec_ml.dir/knn.cpp.o"
  "CMakeFiles/darkvec_ml.dir/knn.cpp.o.d"
  "CMakeFiles/darkvec_ml.dir/linalg.cpp.o"
  "CMakeFiles/darkvec_ml.dir/linalg.cpp.o.d"
  "CMakeFiles/darkvec_ml.dir/metrics.cpp.o"
  "CMakeFiles/darkvec_ml.dir/metrics.cpp.o.d"
  "CMakeFiles/darkvec_ml.dir/silhouette.cpp.o"
  "CMakeFiles/darkvec_ml.dir/silhouette.cpp.o.d"
  "libdarkvec_ml.a"
  "libdarkvec_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/darkvec_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
