
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/dbscan.cpp" "src/ml/CMakeFiles/darkvec_ml.dir/dbscan.cpp.o" "gcc" "src/ml/CMakeFiles/darkvec_ml.dir/dbscan.cpp.o.d"
  "/root/repo/src/ml/evaluation.cpp" "src/ml/CMakeFiles/darkvec_ml.dir/evaluation.cpp.o" "gcc" "src/ml/CMakeFiles/darkvec_ml.dir/evaluation.cpp.o.d"
  "/root/repo/src/ml/hac.cpp" "src/ml/CMakeFiles/darkvec_ml.dir/hac.cpp.o" "gcc" "src/ml/CMakeFiles/darkvec_ml.dir/hac.cpp.o.d"
  "/root/repo/src/ml/kmeans.cpp" "src/ml/CMakeFiles/darkvec_ml.dir/kmeans.cpp.o" "gcc" "src/ml/CMakeFiles/darkvec_ml.dir/kmeans.cpp.o.d"
  "/root/repo/src/ml/knn.cpp" "src/ml/CMakeFiles/darkvec_ml.dir/knn.cpp.o" "gcc" "src/ml/CMakeFiles/darkvec_ml.dir/knn.cpp.o.d"
  "/root/repo/src/ml/linalg.cpp" "src/ml/CMakeFiles/darkvec_ml.dir/linalg.cpp.o" "gcc" "src/ml/CMakeFiles/darkvec_ml.dir/linalg.cpp.o.d"
  "/root/repo/src/ml/metrics.cpp" "src/ml/CMakeFiles/darkvec_ml.dir/metrics.cpp.o" "gcc" "src/ml/CMakeFiles/darkvec_ml.dir/metrics.cpp.o.d"
  "/root/repo/src/ml/silhouette.cpp" "src/ml/CMakeFiles/darkvec_ml.dir/silhouette.cpp.o" "gcc" "src/ml/CMakeFiles/darkvec_ml.dir/silhouette.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/w2v/CMakeFiles/darkvec_w2v.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
