# Empty compiler generated dependencies file for darkvec_ml.
# This may be replaced when dependencies are built.
