# Empty compiler generated dependencies file for compare_embeddings.
# This may be replaced when dependencies are built.
