file(REMOVE_RECURSE
  "CMakeFiles/compare_embeddings.dir/compare_embeddings.cpp.o"
  "CMakeFiles/compare_embeddings.dir/compare_embeddings.cpp.o.d"
  "compare_embeddings"
  "compare_embeddings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_embeddings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
