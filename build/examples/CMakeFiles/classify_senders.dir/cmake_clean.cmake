file(REMOVE_RECURSE
  "CMakeFiles/classify_senders.dir/classify_senders.cpp.o"
  "CMakeFiles/classify_senders.dir/classify_senders.cpp.o.d"
  "classify_senders"
  "classify_senders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classify_senders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
