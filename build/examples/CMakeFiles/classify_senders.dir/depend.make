# Empty dependencies file for classify_senders.
# This may be replaced when dependencies are built.
