# Empty compiler generated dependencies file for scan_detection.
# This may be replaced when dependencies are built.
