file(REMOVE_RECURSE
  "CMakeFiles/scan_detection.dir/scan_detection.cpp.o"
  "CMakeFiles/scan_detection.dir/scan_detection.cpp.o.d"
  "scan_detection"
  "scan_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scan_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
