# Empty dependencies file for darkvec_cli.
# This may be replaced when dependencies are built.
