file(REMOVE_RECURSE
  "CMakeFiles/darkvec_cli.dir/darkvec_cli.cpp.o"
  "CMakeFiles/darkvec_cli.dir/darkvec_cli.cpp.o.d"
  "darkvec"
  "darkvec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/darkvec_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
