# Empty compiler generated dependencies file for darkvec_tests.
# This may be replaced when dependencies are built.
