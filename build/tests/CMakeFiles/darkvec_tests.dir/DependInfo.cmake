
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baselines/dante_test.cpp" "tests/CMakeFiles/darkvec_tests.dir/baselines/dante_test.cpp.o" "gcc" "tests/CMakeFiles/darkvec_tests.dir/baselines/dante_test.cpp.o.d"
  "/root/repo/tests/baselines/ip2vec_test.cpp" "tests/CMakeFiles/darkvec_tests.dir/baselines/ip2vec_test.cpp.o" "gcc" "tests/CMakeFiles/darkvec_tests.dir/baselines/ip2vec_test.cpp.o.d"
  "/root/repo/tests/baselines/port_features_test.cpp" "tests/CMakeFiles/darkvec_tests.dir/baselines/port_features_test.cpp.o" "gcc" "tests/CMakeFiles/darkvec_tests.dir/baselines/port_features_test.cpp.o.d"
  "/root/repo/tests/core/darkvec_test.cpp" "tests/CMakeFiles/darkvec_tests.dir/core/darkvec_test.cpp.o" "gcc" "tests/CMakeFiles/darkvec_tests.dir/core/darkvec_test.cpp.o.d"
  "/root/repo/tests/core/inspector_test.cpp" "tests/CMakeFiles/darkvec_tests.dir/core/inspector_test.cpp.o" "gcc" "tests/CMakeFiles/darkvec_tests.dir/core/inspector_test.cpp.o.d"
  "/root/repo/tests/core/model_io_test.cpp" "tests/CMakeFiles/darkvec_tests.dir/core/model_io_test.cpp.o" "gcc" "tests/CMakeFiles/darkvec_tests.dir/core/model_io_test.cpp.o.d"
  "/root/repo/tests/core/raster_test.cpp" "tests/CMakeFiles/darkvec_tests.dir/core/raster_test.cpp.o" "gcc" "tests/CMakeFiles/darkvec_tests.dir/core/raster_test.cpp.o.d"
  "/root/repo/tests/core/semi_supervised_test.cpp" "tests/CMakeFiles/darkvec_tests.dir/core/semi_supervised_test.cpp.o" "gcc" "tests/CMakeFiles/darkvec_tests.dir/core/semi_supervised_test.cpp.o.d"
  "/root/repo/tests/core/streaming_test.cpp" "tests/CMakeFiles/darkvec_tests.dir/core/streaming_test.cpp.o" "gcc" "tests/CMakeFiles/darkvec_tests.dir/core/streaming_test.cpp.o.d"
  "/root/repo/tests/core/transfer_test.cpp" "tests/CMakeFiles/darkvec_tests.dir/core/transfer_test.cpp.o" "gcc" "tests/CMakeFiles/darkvec_tests.dir/core/transfer_test.cpp.o.d"
  "/root/repo/tests/corpus/corpus_property_test.cpp" "tests/CMakeFiles/darkvec_tests.dir/corpus/corpus_property_test.cpp.o" "gcc" "tests/CMakeFiles/darkvec_tests.dir/corpus/corpus_property_test.cpp.o.d"
  "/root/repo/tests/corpus/corpus_test.cpp" "tests/CMakeFiles/darkvec_tests.dir/corpus/corpus_test.cpp.o" "gcc" "tests/CMakeFiles/darkvec_tests.dir/corpus/corpus_test.cpp.o.d"
  "/root/repo/tests/corpus/service_map_test.cpp" "tests/CMakeFiles/darkvec_tests.dir/corpus/service_map_test.cpp.o" "gcc" "tests/CMakeFiles/darkvec_tests.dir/corpus/service_map_test.cpp.o.d"
  "/root/repo/tests/graph/graph_test.cpp" "tests/CMakeFiles/darkvec_tests.dir/graph/graph_test.cpp.o" "gcc" "tests/CMakeFiles/darkvec_tests.dir/graph/graph_test.cpp.o.d"
  "/root/repo/tests/graph/knn_graph_test.cpp" "tests/CMakeFiles/darkvec_tests.dir/graph/knn_graph_test.cpp.o" "gcc" "tests/CMakeFiles/darkvec_tests.dir/graph/knn_graph_test.cpp.o.d"
  "/root/repo/tests/graph/louvain_exhaustive_test.cpp" "tests/CMakeFiles/darkvec_tests.dir/graph/louvain_exhaustive_test.cpp.o" "gcc" "tests/CMakeFiles/darkvec_tests.dir/graph/louvain_exhaustive_test.cpp.o.d"
  "/root/repo/tests/graph/louvain_test.cpp" "tests/CMakeFiles/darkvec_tests.dir/graph/louvain_test.cpp.o" "gcc" "tests/CMakeFiles/darkvec_tests.dir/graph/louvain_test.cpp.o.d"
  "/root/repo/tests/integration/cross_module_test.cpp" "tests/CMakeFiles/darkvec_tests.dir/integration/cross_module_test.cpp.o" "gcc" "tests/CMakeFiles/darkvec_tests.dir/integration/cross_module_test.cpp.o.d"
  "/root/repo/tests/integration/pipeline_test.cpp" "tests/CMakeFiles/darkvec_tests.dir/integration/pipeline_test.cpp.o" "gcc" "tests/CMakeFiles/darkvec_tests.dir/integration/pipeline_test.cpp.o.d"
  "/root/repo/tests/ml/clustering_test.cpp" "tests/CMakeFiles/darkvec_tests.dir/ml/clustering_test.cpp.o" "gcc" "tests/CMakeFiles/darkvec_tests.dir/ml/clustering_test.cpp.o.d"
  "/root/repo/tests/ml/evaluation_test.cpp" "tests/CMakeFiles/darkvec_tests.dir/ml/evaluation_test.cpp.o" "gcc" "tests/CMakeFiles/darkvec_tests.dir/ml/evaluation_test.cpp.o.d"
  "/root/repo/tests/ml/knn_reference_test.cpp" "tests/CMakeFiles/darkvec_tests.dir/ml/knn_reference_test.cpp.o" "gcc" "tests/CMakeFiles/darkvec_tests.dir/ml/knn_reference_test.cpp.o.d"
  "/root/repo/tests/ml/knn_test.cpp" "tests/CMakeFiles/darkvec_tests.dir/ml/knn_test.cpp.o" "gcc" "tests/CMakeFiles/darkvec_tests.dir/ml/knn_test.cpp.o.d"
  "/root/repo/tests/ml/linalg_test.cpp" "tests/CMakeFiles/darkvec_tests.dir/ml/linalg_test.cpp.o" "gcc" "tests/CMakeFiles/darkvec_tests.dir/ml/linalg_test.cpp.o.d"
  "/root/repo/tests/ml/metrics_test.cpp" "tests/CMakeFiles/darkvec_tests.dir/ml/metrics_test.cpp.o" "gcc" "tests/CMakeFiles/darkvec_tests.dir/ml/metrics_test.cpp.o.d"
  "/root/repo/tests/ml/silhouette_test.cpp" "tests/CMakeFiles/darkvec_tests.dir/ml/silhouette_test.cpp.o" "gcc" "tests/CMakeFiles/darkvec_tests.dir/ml/silhouette_test.cpp.o.d"
  "/root/repo/tests/ml/stats_test.cpp" "tests/CMakeFiles/darkvec_tests.dir/ml/stats_test.cpp.o" "gcc" "tests/CMakeFiles/darkvec_tests.dir/ml/stats_test.cpp.o.d"
  "/root/repo/tests/net/ipv4_test.cpp" "tests/CMakeFiles/darkvec_tests.dir/net/ipv4_test.cpp.o" "gcc" "tests/CMakeFiles/darkvec_tests.dir/net/ipv4_test.cpp.o.d"
  "/root/repo/tests/net/protocol_test.cpp" "tests/CMakeFiles/darkvec_tests.dir/net/protocol_test.cpp.o" "gcc" "tests/CMakeFiles/darkvec_tests.dir/net/protocol_test.cpp.o.d"
  "/root/repo/tests/net/time_test.cpp" "tests/CMakeFiles/darkvec_tests.dir/net/time_test.cpp.o" "gcc" "tests/CMakeFiles/darkvec_tests.dir/net/time_test.cpp.o.d"
  "/root/repo/tests/net/trace_binary_test.cpp" "tests/CMakeFiles/darkvec_tests.dir/net/trace_binary_test.cpp.o" "gcc" "tests/CMakeFiles/darkvec_tests.dir/net/trace_binary_test.cpp.o.d"
  "/root/repo/tests/net/trace_io_test.cpp" "tests/CMakeFiles/darkvec_tests.dir/net/trace_io_test.cpp.o" "gcc" "tests/CMakeFiles/darkvec_tests.dir/net/trace_io_test.cpp.o.d"
  "/root/repo/tests/net/trace_test.cpp" "tests/CMakeFiles/darkvec_tests.dir/net/trace_test.cpp.o" "gcc" "tests/CMakeFiles/darkvec_tests.dir/net/trace_test.cpp.o.d"
  "/root/repo/tests/sim/address_space_test.cpp" "tests/CMakeFiles/darkvec_tests.dir/sim/address_space_test.cpp.o" "gcc" "tests/CMakeFiles/darkvec_tests.dir/sim/address_space_test.cpp.o.d"
  "/root/repo/tests/sim/honeypot_test.cpp" "tests/CMakeFiles/darkvec_tests.dir/sim/honeypot_test.cpp.o" "gcc" "tests/CMakeFiles/darkvec_tests.dir/sim/honeypot_test.cpp.o.d"
  "/root/repo/tests/sim/ports_test.cpp" "tests/CMakeFiles/darkvec_tests.dir/sim/ports_test.cpp.o" "gcc" "tests/CMakeFiles/darkvec_tests.dir/sim/ports_test.cpp.o.d"
  "/root/repo/tests/sim/rng_test.cpp" "tests/CMakeFiles/darkvec_tests.dir/sim/rng_test.cpp.o" "gcc" "tests/CMakeFiles/darkvec_tests.dir/sim/rng_test.cpp.o.d"
  "/root/repo/tests/sim/scenario_test.cpp" "tests/CMakeFiles/darkvec_tests.dir/sim/scenario_test.cpp.o" "gcc" "tests/CMakeFiles/darkvec_tests.dir/sim/scenario_test.cpp.o.d"
  "/root/repo/tests/sim/simulator_test.cpp" "tests/CMakeFiles/darkvec_tests.dir/sim/simulator_test.cpp.o" "gcc" "tests/CMakeFiles/darkvec_tests.dir/sim/simulator_test.cpp.o.d"
  "/root/repo/tests/sim/temporal_test.cpp" "tests/CMakeFiles/darkvec_tests.dir/sim/temporal_test.cpp.o" "gcc" "tests/CMakeFiles/darkvec_tests.dir/sim/temporal_test.cpp.o.d"
  "/root/repo/tests/sim/vantage_test.cpp" "tests/CMakeFiles/darkvec_tests.dir/sim/vantage_test.cpp.o" "gcc" "tests/CMakeFiles/darkvec_tests.dir/sim/vantage_test.cpp.o.d"
  "/root/repo/tests/w2v/embedding_test.cpp" "tests/CMakeFiles/darkvec_tests.dir/w2v/embedding_test.cpp.o" "gcc" "tests/CMakeFiles/darkvec_tests.dir/w2v/embedding_test.cpp.o.d"
  "/root/repo/tests/w2v/glove_test.cpp" "tests/CMakeFiles/darkvec_tests.dir/w2v/glove_test.cpp.o" "gcc" "tests/CMakeFiles/darkvec_tests.dir/w2v/glove_test.cpp.o.d"
  "/root/repo/tests/w2v/skipgram_test.cpp" "tests/CMakeFiles/darkvec_tests.dir/w2v/skipgram_test.cpp.o" "gcc" "tests/CMakeFiles/darkvec_tests.dir/w2v/skipgram_test.cpp.o.d"
  "/root/repo/tests/w2v/vocab_test.cpp" "tests/CMakeFiles/darkvec_tests.dir/w2v/vocab_test.cpp.o" "gcc" "tests/CMakeFiles/darkvec_tests.dir/w2v/vocab_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/darkvec_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/darkvec_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/darkvec_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/darkvec_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/w2v/CMakeFiles/darkvec_w2v.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/darkvec_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/darkvec_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/darkvec_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
